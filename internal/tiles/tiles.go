// Package tiles implements the ECL/TTL separation of Section 10.2 (the
// method of J. Prisner and R. Kao): each signal layer is tesselated into
// areas reserved for one technology. The board is then routed as two
// superimposed problems — before each pass, all free space in the other
// technology's tiles is filled with temporary blocking segments, and the
// filler is removed after the pass.
package tiles

import (
	"fmt"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/layer"
)

// Tile reserves a rectangle of one signal layer for a technology class.
type Tile struct {
	Layer int
	Rect  geom.Rect // grid units
	Class string    // "ECL", "TTL", ...
}

// Plan is a board's complete tesselation.
type Plan struct {
	Tiles []Tile
}

// Add appends a tile.
func (p *Plan) Add(layerIdx int, r geom.Rect, class string) {
	p.Tiles = append(p.Tiles, Tile{Layer: layerIdx, Rect: r, Class: class})
}

// Classes returns the distinct tile classes in first-seen order.
func (p *Plan) Classes() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range p.Tiles {
		if !seen[t.Class] {
			seen[t.Class] = true
			out = append(out, t.Class)
		}
	}
	return out
}

// Validate checks tiles lie on the board and that no two tiles of
// different classes overlap on the same layer.
func (p *Plan) Validate(b *board.Board) error {
	bounds := b.Cfg.Bounds()
	for i, t := range p.Tiles {
		if t.Layer < 0 || t.Layer >= b.NumLayers() {
			return fmt.Errorf("tiles: tile %d on layer %d of %d", i, t.Layer, b.NumLayers())
		}
		if t.Rect.Empty() || !bounds.Contains(t.Rect) {
			return fmt.Errorf("tiles: tile %d rect %v outside board %v", i, t.Rect, bounds)
		}
		for j := 0; j < i; j++ {
			o := p.Tiles[j]
			if o.Layer == t.Layer && o.Class != t.Class && !o.Rect.Intersect(t.Rect).Empty() {
				return fmt.Errorf("tiles: %s tile %d overlaps %s tile %d on layer %d",
					t.Class, i, o.Class, j, t.Layer)
			}
		}
	}
	return nil
}

// Fill records the filler segments added by Fill so Unfill can remove
// them.
type Fill struct {
	segs []placed
}

type placed struct {
	layer int
	seg   *layer.Segment
}

// FillExcept blocks all free space inside every tile whose class differs
// from allow. Pins and existing traces are untouched; only gaps are
// filled. The returned Fill removes exactly what was added.
func (p *Plan) FillExcept(b *board.Board, allow string) *Fill {
	f := &Fill{}
	for _, t := range p.Tiles {
		if t.Class == allow {
			continue
		}
		l := b.Layers[t.Layer]
		chans, poswin := b.Cfg.ChanSpan(l.Orient, t.Rect)
		chans = chans.Intersect(geom.Iv(0, l.NumChannels()-1))
		for ch := chans.Lo; ch <= chans.Hi; ch++ {
			// Collect first: filling while visiting would invalidate the
			// iteration.
			var gaps []geom.Interval
			l.Chan(ch).VisitFree(poswin, func(iv geom.Interval) bool {
				gaps = append(gaps, iv.Intersect(poswin))
				return true
			})
			for _, g := range gaps {
				s := b.AddSegment(t.Layer, ch, g.Lo, g.Hi, layer.FillOwner)
				if s != nil {
					f.segs = append(f.segs, placed{t.Layer, s})
				}
			}
		}
	}
	return f
}

// Unfill removes the filler.
func (f *Fill) Unfill(b *board.Board) {
	for _, pl := range f.segs {
		b.RemoveSegment(pl.layer, pl.seg)
	}
	f.segs = nil
}

// PassResult reports one technology pass of RouteMixed.
type PassResult struct {
	Class  string
	Router *core.Router
	Result core.Result
	// ConnIdx maps the pass router's connection indices back into the
	// original connection slice.
	ConnIdx []int
}

// RouteMixed routes a mixed-technology connection list as superimposed
// problems, one pass per tile class in plan order (Section 10.2): fill
// the other classes' tiles, route this class's connections, unfill.
// Connections whose Class matches no tile class are routed in a final
// unrestricted pass.
func RouteMixed(b *board.Board, conns []core.Connection, opts core.Options, plan *Plan) ([]PassResult, error) {
	if err := plan.Validate(b); err != nil {
		return nil, err
	}
	classes := plan.Classes()
	known := map[string]bool{}
	for _, c := range classes {
		known[c] = true
	}

	var passes []PassResult
	idBase := 0
	runPass := func(class string, restrict bool) error {
		var sub []core.Connection
		var idx []int
		for i, c := range conns {
			if (restrict && c.Class == class) || (!restrict && !known[c.Class]) {
				sub = append(sub, c)
				idx = append(idx, i)
			}
		}
		if len(sub) == 0 {
			return nil
		}
		var fill *Fill
		if restrict {
			fill = plan.FillExcept(b, class)
			defer fill.Unfill(b)
		}
		popts := opts
		popts.IDBase = idBase
		idBase += len(sub)
		r, err := core.New(b, sub, popts)
		if err != nil {
			return err
		}
		res := r.Route()
		passes = append(passes, PassResult{Class: class, Router: r, Result: res, ConnIdx: idx})
		if fill != nil {
			fill.Unfill(b)
		}
		return nil
	}

	for _, class := range classes {
		if err := runPass(class, true); err != nil {
			return nil, err
		}
	}
	if err := runPass("", false); err != nil {
		return nil, err
	}
	return passes, nil
}
