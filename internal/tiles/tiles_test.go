package tiles

import (
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/verify"
)

func mixedBoard(t *testing.T) (*board.Board, *Plan, []core.Connection) {
	t.Helper()
	b, err := board.New(grid.NewConfig(20, 12, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Left half ECL, right half TTL, on both layers.
	plan := &Plan{}
	mid := (b.Cfg.Width - 1) / 2
	for li := 0; li < 2; li++ {
		plan.Add(li, geom.R(0, 0, mid, b.Cfg.Height-1), "ECL")
		plan.Add(li, geom.R(mid+1, 0, b.Cfg.Width-1, b.Cfg.Height-1), "TTL")
	}

	pin := func(vx, vy int) geom.Point {
		p := b.Cfg.GridOf(geom.Pt(vx, vy))
		if err := b.PlacePin(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	var conns []core.Connection
	// ECL pairs on the left (via cols 0..9 → grid x ≤ 27 ≤ mid=28).
	for i := 0; i < 3; i++ {
		a := pin(1, 2+2*i)
		c := pin(8, 2+2*i)
		conns = append(conns, core.Connection{A: a, B: c, Class: "ECL"})
	}
	// TTL pairs on the right (via cols 10..19 → grid x ≥ 30 > mid).
	for i := 0; i < 3; i++ {
		a := pin(11, 2+2*i)
		c := pin(18, 2+2*i)
		conns = append(conns, core.Connection{A: a, B: c, Class: "TTL"})
	}
	return b, plan, conns
}

func TestPlanValidate(t *testing.T) {
	b, plan, _ := mixedBoard(t)
	if err := plan.Validate(b); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := &Plan{}
	bad.Add(0, geom.R(0, 0, 10, 10), "ECL")
	bad.Add(0, geom.R(5, 5, 15, 15), "TTL")
	if err := bad.Validate(b); err == nil {
		t.Error("overlapping opposite-class tiles accepted")
	}
	bad2 := &Plan{}
	bad2.Add(7, geom.R(0, 0, 2, 2), "ECL")
	if err := bad2.Validate(b); err == nil {
		t.Error("tile on nonexistent layer accepted")
	}
	bad3 := &Plan{}
	bad3.Add(0, geom.R(0, 0, 500, 2), "ECL")
	if err := bad3.Validate(b); err == nil {
		t.Error("off-board tile accepted")
	}
}

func TestClasses(t *testing.T) {
	_, plan, _ := mixedBoard(t)
	cls := plan.Classes()
	if len(cls) != 2 || cls[0] != "ECL" || cls[1] != "TTL" {
		t.Fatalf("Classes = %v", cls)
	}
}

func TestFillExceptBlocksOnlyOtherTiles(t *testing.T) {
	b, plan, _ := mixedBoard(t)
	fill := plan.FillExcept(b, "ECL")

	mid := (b.Cfg.Width - 1) / 2
	// A point inside the TTL region must now be blocked on both layers;
	// ECL-region points stay free.
	ttlPt := geom.Pt(mid+5, 5)
	eclPt := geom.Pt(2, 5)
	for li := 0; li < 2; li++ {
		if b.FreeAt(li, ttlPt) {
			t.Errorf("layer %d: TTL region not filled", li)
		}
		if !b.FreeAt(li, eclPt) {
			t.Errorf("layer %d: ECL region filled", li)
		}
		if got := b.OwnerAt(li, ttlPt); got != layer.FillOwner {
			t.Errorf("fill owner = %d", got)
		}
	}
	fill.Unfill(b)
	for li := 0; li < 2; li++ {
		if !b.FreeAt(li, ttlPt) {
			t.Errorf("layer %d: unfill incomplete", li)
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestFillDoesNotTouchExistingMetal(t *testing.T) {
	b, plan, _ := mixedBoard(t)
	mid := (b.Cfg.Width - 1) / 2
	// Pre-existing trace inside the TTL region.
	o := b.Layers[0].Orient
	ch, pos := b.Cfg.ChanPos(o, geom.Pt(mid+5, 7))
	pre := b.AddSegment(0, ch, pos, pos+3, 42)
	if pre == nil {
		t.Fatal("setup failed")
	}
	fill := plan.FillExcept(b, "ECL")
	if pre.Owner != 42 {
		t.Error("fill disturbed existing segment")
	}
	fill.Unfill(b)
	if b.OwnerAt(0, geom.Pt(mid+5, 7)) != 42 {
		t.Error("unfill removed foreign metal")
	}
}

func TestRouteMixedSeparates(t *testing.T) {
	b, plan, conns := mixedBoard(t)
	passes, err := RouteMixed(b, conns, core.DefaultOptions(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 2 {
		t.Fatalf("passes = %d", len(passes))
	}
	for _, p := range passes {
		if !p.Result.Complete() {
			t.Fatalf("%s pass incomplete: %v", p.Class, p.Result.FailedConns)
		}
		if err := verify.Routed(b, p.Router); err != nil {
			t.Fatalf("%s pass verification: %v", p.Class, err)
		}
	}
	if err := b.Audit(); err != nil {
		t.Fatal(err)
	}

	// No trace metal of one class may sit in the other class's tiles.
	classAt := func(li int, p geom.Point) string {
		for _, tl := range plan.Tiles {
			if tl.Layer == li && p.In(tl.Rect) {
				return tl.Class
			}
		}
		return ""
	}
	for _, pass := range passes {
		for i := range pass.Router.Conns {
			rt := pass.Router.RouteOf(i)
			for _, ps := range rt.Segs {
				o := b.Layers[ps.Layer].Orient
				for pos := ps.Seg.Lo; pos <= ps.Seg.Hi; pos++ {
					pt := b.Cfg.PointAt(o, ps.Seg.Channel(), pos)
					if cls := classAt(ps.Layer, pt); cls != "" && cls != pass.Class {
						t.Fatalf("%s trace at %v inside %s tile", pass.Class, pt, cls)
					}
				}
			}
		}
	}
}

func TestRouteMixedUnknownClassPass(t *testing.T) {
	b, plan, conns := mixedBoard(t)
	// An extra untagged connection routes in the unrestricted pass.
	a := b.Cfg.GridOf(geom.Pt(4, 9))
	c := b.Cfg.GridOf(geom.Pt(15, 9))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	conns = append(conns, core.Connection{A: a, B: c, Class: "ANALOG"})
	passes, err := RouteMixed(b, conns, core.DefaultOptions(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) != 3 {
		t.Fatalf("passes = %d, want 3 (ECL, TTL, unrestricted)", len(passes))
	}
	last := passes[2]
	if last.Class != "" || !last.Result.Complete() {
		t.Fatalf("unrestricted pass: class=%q complete=%v", last.Class, last.Result.Complete())
	}
}

func TestRouteMixedCrossRegionECLFails(t *testing.T) {
	// An ECL connection whose far pin sits deep in TTL territory cannot
	// route while the TTL tiles are filled: its endpoint is walled in.
	b, plan, _ := mixedBoard(t)
	a := b.Cfg.GridOf(geom.Pt(1, 9))
	c := b.Cfg.GridOf(geom.Pt(18, 9))
	if err := b.PlacePin(a); err != nil {
		t.Fatal(err)
	}
	if err := b.PlacePin(c); err != nil {
		t.Fatal(err)
	}
	conns := []core.Connection{{A: a, B: c, Class: "ECL"}}
	opts := core.DefaultOptions()
	opts.Escalate = false
	passes, err := RouteMixed(b, conns, opts, plan)
	if err != nil {
		t.Fatal(err)
	}
	if passes[0].Result.Complete() {
		t.Fatal("ECL connection routed into filled TTL territory")
	}
}
