// Package stats computes and formats the evaluation metrics of the
// paper's Table 1: board identity, layer count, connection count, pin
// density, channel demand (%chan), the share of connections needing Lee's
// algorithm (%lee), rip-ups, vias per connection and routing time.
package stats

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/netlist"
)

// Row is one line of the results table.
type Row struct {
	Board   string
	Layers  int
	Conns   int
	PinsIn2 float64 // pins per square inch
	ChanPct float64 // channel demand / supply × 100 (Table 1 "% chan")
	LeePct  float64 // connections routed by Lee × 100 (Table 1 "% lee")
	RipUps  int
	ViasPC  float64 // vias added per routed connection
	Elapsed time.Duration
	Routed  int
	Failed  int
}

// ChanPercent computes Table 1's "% chan": the total Manhattan length of
// all connections divided by the total available channel space on all
// layers (both in routing-grid units).
func ChanPercent(b *board.Board, conns []core.Connection) float64 {
	demand := 0
	for _, c := range conns {
		demand += c.A.ManhattanDist(c.B)
	}
	supply := b.Cfg.Width * b.Cfg.Height * len(b.Layers)
	if supply == 0 {
		return 0
	}
	return 100 * float64(demand) / float64(supply)
}

// NewRow assembles a table row from a routing run.
func NewRow(d *netlist.Design, b *board.Board, conns []core.Connection, res core.Result, elapsed time.Duration) Row {
	m := res.Metrics
	return Row{
		Board:   d.Name,
		Layers:  len(b.Layers),
		Conns:   len(conns),
		PinsIn2: d.PinDensity(),
		ChanPct: ChanPercent(b, conns),
		LeePct:  100 * m.LeeShare(),
		RipUps:  m.RipUps,
		ViasPC:  m.ViasPerConn(),
		Elapsed: elapsed,
		Routed:  m.Routed,
		Failed:  m.Failed,
	}
}

// Header returns the table header, mirroring Table 1's columns with a
// seconds column in place of VAX CPU minutes.
func Header() string {
	return fmt.Sprintf("%-10s %6s %6s %8s %7s %6s %7s %6s %9s %9s",
		"board", "layers", "conn", "pins/in2", "%chan", "%lee", "ripups", "vias", "CPU s", "routed")
}

// Format renders the row under Header.
func (r Row) Format() string {
	routed := fmt.Sprintf("%d/%d", r.Routed, r.Routed+r.Failed)
	return fmt.Sprintf("%-10s %6d %6d %8.1f %7.1f %6.1f %7d %6.2f %9.2f %9s",
		r.Board, r.Layers, r.Conns, r.PinsIn2, r.ChanPct, r.LeePct, r.RipUps, r.ViasPC,
		r.Elapsed.Seconds(), routed)
}

// FormatTable renders a full results table.
func FormatTable(rows []Row) string {
	var sb strings.Builder
	sb.WriteString(Header())
	sb.WriteByte('\n')
	for _, r := range rows {
		sb.WriteString(r.Format())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// PaperRow is the published Table 1 value set, for paper-vs-measured
// reports in EXPERIMENTS.md.
type PaperRow struct {
	Board   string
	Layers  int
	Conns   int
	PinsIn2 float64
	ChanPct float64
	LeePct  float64 // -1 when the paper leaves the cell blank (failed run)
	RipUps  int
	ViasPC  float64
	CPUMin  float64
	Failed  bool // the kdj11 2-layer run did not complete
}

// PaperTable1 transcribes Table 1 of the paper.
func PaperTable1() []PaperRow {
	return []PaperRow{
		{Board: "kdj11-2L", Layers: 2, Conns: 1184, PinsIn2: 27.5, ChanPct: 76.7, LeePct: -1, RipUps: -1, ViasPC: -1, CPUMin: 30, Failed: true},
		{Board: "nmc-4L", Layers: 4, Conns: 2253, PinsIn2: 29.9, ChanPct: 52.3, LeePct: 14, RipUps: 20, ViasPC: 0.99, CPUMin: 28.5},
		{Board: "dpath", Layers: 6, Conns: 5533, PinsIn2: 37.3, ChanPct: 46.0, LeePct: 8, RipUps: 1, ViasPC: 0.65, CPUMin: 21.5},
		{Board: "coproc", Layers: 6, Conns: 5937, PinsIn2: 36.0, ChanPct: 40.5, LeePct: 6, RipUps: 0, ViasPC: 0.62, CPUMin: 11.3},
		{Board: "kdj11-4L", Layers: 4, Conns: 1184, PinsIn2: 27.5, ChanPct: 38.4, LeePct: 8, RipUps: 0, ViasPC: 0.70, CPUMin: 4.6},
		{Board: "icache", Layers: 6, Conns: 5795, PinsIn2: 36.6, ChanPct: 36.5, LeePct: 3, RipUps: 0, ViasPC: 0.41, CPUMin: 6.1},
		{Board: "nmc-6L", Layers: 6, Conns: 2253, PinsIn2: 29.9, ChanPct: 34.9, LeePct: 3, RipUps: 0, ViasPC: 0.68, CPUMin: 2.2},
		{Board: "dcache", Layers: 6, Conns: 5738, PinsIn2: 36.4, ChanPct: 33.5, LeePct: 2, RipUps: 0, ViasPC: 0.40, CPUMin: 5.2},
		{Board: "tna", Layers: 6, Conns: 2789, PinsIn2: 43.4, ChanPct: 27.1, LeePct: 3, RipUps: 6, ViasPC: 0.50, CPUMin: 4.8},
	}
}
