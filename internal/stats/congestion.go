package stats

import (
	"fmt"
	"strings"

	"repro/internal/board"
	"repro/internal/geom"
	"repro/internal/layer"
)

// Congestion summarizes channel occupancy over a routed board — the
// measured counterpart of Table 1's %chan estimate, and the tool for
// spotting the local hot spots that trigger Lee searches and rip-ups
// ("congestion prevents optimal solutions to later connections",
// Section 9).
type Congestion struct {
	// Cells is the per-region occupied-cell fraction (all layers
	// pooled), indexed [row][col].
	Cells [][]float64
	// RegionVia is the region edge length in via units.
	RegionVia int
	// Overall is the whole-board occupied fraction.
	Overall float64
	// Peak is the highest region fraction and its region coordinates.
	Peak         float64
	PeakX, PeakY int
}

// MeasureCongestion divides the board into regionVia×regionVia via-unit
// regions and returns the occupied-cell fraction of each (pins and fill
// count as occupation: they consume routing supply either way).
func MeasureCongestion(b *board.Board, regionVia int) *Congestion {
	if regionVia <= 0 {
		regionVia = 8
	}
	pitch := b.Cfg.Pitch
	regionCells := regionVia * pitch
	cols := (b.Cfg.Width + regionCells - 1) / regionCells
	rows := (b.Cfg.Height + regionCells - 1) / regionCells

	used := make([][]int, rows)
	total := make([][]int, rows)
	for i := range used {
		used[i] = make([]int, cols)
		total[i] = make([]int, cols)
	}

	for _, l := range b.Layers {
		for ci := 0; ci < l.NumChannels(); ci++ {
			l.Chan(ci).VisitUsed(geom.Iv(0, l.ChannelLength()-1), func(s *layer.Segment) bool {
				for pos := s.Lo; pos <= s.Hi; pos++ {
					p := b.Cfg.PointAt(l.Orient, ci, pos)
					used[p.Y/regionCells][p.X/regionCells]++
				}
				return true
			})
		}
	}
	layers := b.NumLayers()
	for y := 0; y < b.Cfg.Height; y++ {
		for x := 0; x < b.Cfg.Width; x++ {
			total[y/regionCells][x/regionCells] += layers
		}
	}

	c := &Congestion{
		Cells:     make([][]float64, rows),
		RegionVia: regionVia,
	}
	usedSum, totalSum := 0, 0
	for r := 0; r < rows; r++ {
		c.Cells[r] = make([]float64, cols)
		for col := 0; col < cols; col++ {
			usedSum += used[r][col]
			totalSum += total[r][col]
			if total[r][col] > 0 {
				f := float64(used[r][col]) / float64(total[r][col])
				c.Cells[r][col] = f
				if f > c.Peak {
					c.Peak, c.PeakX, c.PeakY = f, col, r
				}
			}
		}
	}
	if totalSum > 0 {
		c.Overall = float64(usedSum) / float64(totalSum)
	}
	return c
}

// Heatmap renders the congestion as ASCII art, one character per region:
// '.' below 10%, then digits 1–9 for 10%–90%, '#' above.
func (c *Congestion) Heatmap() string {
	var sb strings.Builder
	for _, row := range c.Cells {
		for _, f := range row {
			switch {
			case f < 0.10:
				sb.WriteByte('.')
			case f >= 0.95:
				sb.WriteByte('#')
			default:
				sb.WriteByte("0123456789"[int(f*10)])
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "overall %.1f%%, peak %.1f%% at region (%d,%d)\n",
		100*c.Overall, 100*c.Peak, c.PeakX, c.PeakY)
	return sb.String()
}
