package stats

import (
	"strings"
	"testing"
	"time"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/netlist"
)

func TestChanPercent(t *testing.T) {
	b := board.MustNew(grid.NewConfig(11, 11, 3, 2))
	// Board is 31×31 grid cells × 2 layers = 1922 cells of supply.
	conns := []core.Connection{
		{A: geom.Pt(0, 0), B: geom.Pt(30, 0)},  // 30 cells
		{A: geom.Pt(0, 0), B: geom.Pt(0, 30)},  // 30
		{A: geom.Pt(0, 0), B: geom.Pt(30, 30)}, // 60
	}
	got := ChanPercent(b, conns)
	want := 100 * 120.0 / 1922.0
	if got < want-0.01 || got > want+0.01 {
		t.Errorf("ChanPercent = %v, want %v", got, want)
	}
	if ChanPercent(b, nil) != 0 {
		t.Error("no connections should give 0%")
	}
}

func TestRowFormatting(t *testing.T) {
	d := &netlist.Design{Name: "demo", ViaCols: 11, ViaRows: 11, Layers: 2}
	b := board.MustNew(d.GridConfig())
	res := core.Result{}
	res.Metrics.Connections = 10
	res.Metrics.Routed = 9
	res.Metrics.Failed = 1
	res.Metrics.ByMethod[core.Lee] = 3
	res.Metrics.RipUps = 2
	res.Metrics.ViasAdded = 6
	row := NewRow(d, b, nil, res, 1500*time.Millisecond)
	if want := 100.0 * 3 / 9; row.LeePct < want-0.001 || row.LeePct > want+0.001 {
		t.Errorf("LeePct = %v, want %v", row.LeePct, want)
	}
	if row.ViasPC != 6.0/9 {
		t.Errorf("ViasPC = %v", row.ViasPC)
	}
	line := row.Format()
	if !strings.Contains(line, "demo") || !strings.Contains(line, "9/10") || !strings.Contains(line, "1.50") {
		t.Errorf("format lost fields: %q", line)
	}
	table := FormatTable([]Row{row})
	if !strings.HasPrefix(table, Header()) {
		t.Error("table lacks header")
	}
}

func TestPaperTable1Transcription(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0].Failed || rows[0].Board != "kdj11-2L" {
		t.Error("first row must be the failed 2-layer kdj11")
	}
	// Sanity: %chan strictly decreasing down the table (the paper sorts
	// by decreasing difficulty).
	for i := 1; i < len(rows); i++ {
		if rows[i].ChanPct >= rows[i-1].ChanPct {
			t.Errorf("paper rows out of order at %s", rows[i].Board)
		}
	}
	// Published totals spot-checks.
	if rows[3].Board != "coproc" || rows[3].Conns != 5937 || rows[3].ViasPC != 0.62 {
		t.Errorf("coproc row mistranscribed: %+v", rows[3])
	}
}

func TestMeasureCongestion(t *testing.T) {
	b := board.MustNew(grid.NewConfig(17, 17, 3, 2))
	// Occupy the top-left corner heavily: vertical full-height strips in
	// the first few channels of layer 0.
	for ch := 0; ch < 12; ch++ {
		if b.AddSegment(0, ch, 0, 23, 1) == nil {
			t.Fatal("setup failed")
		}
	}
	c := MeasureCongestion(b, 8)
	if c.Overall <= 0 {
		t.Fatal("no occupancy measured")
	}
	// The top-left region must be the peak.
	if c.PeakX != 0 || c.PeakY != 0 {
		t.Errorf("peak at (%d,%d), want (0,0)", c.PeakX, c.PeakY)
	}
	if c.Peak <= c.Overall {
		t.Error("peak should exceed the overall average")
	}
	hm := c.Heatmap()
	if !strings.Contains(hm, "overall") || len(strings.Split(hm, "\n")) < 3 {
		t.Errorf("heatmap malformed:\n%s", hm)
	}
}

func TestCongestionEmptyBoard(t *testing.T) {
	b := board.MustNew(grid.NewConfig(10, 10, 3, 2))
	c := MeasureCongestion(b, 0) // default region size
	if c.Overall != 0 || c.Peak != 0 {
		t.Errorf("empty board congested: %+v", c)
	}
}

func TestCongestionFractionsBounded(t *testing.T) {
	b := board.MustNew(grid.NewConfig(12, 12, 3, 2))
	// Fill layer 0 completely.
	for ch := 0; ch < b.Layers[0].NumChannels(); ch++ {
		b.AddSegment(0, ch, 0, b.Layers[0].ChannelLength()-1, 1)
	}
	c := MeasureCongestion(b, 4)
	for _, row := range c.Cells {
		for _, f := range row {
			if f < 0 || f > 1 {
				t.Fatalf("fraction %v out of [0,1]", f)
			}
		}
	}
	// Exactly one of two layers full → 50% everywhere.
	if c.Overall < 0.49 || c.Overall > 0.51 {
		t.Errorf("overall = %v, want ~0.5", c.Overall)
	}
}
