package simfs

import (
	"fmt"
	"io/fs"
	"strings"
	"sync"
)

// InjectFS passes through to an underlying filesystem but fails
// selected operations with real errno-wrapped errors, so the code
// under test classifies them exactly as it would classify the genuine
// article (errors.Is(err, syscall.ENOSPC) and friends). It drives the
// disk-degradation runtime paths and the fsync/short-write semantics
// tests.
type InjectFS struct {
	under FS

	mu    sync.Mutex
	rules []*Rule
}

// Rule arms one failure. A rule matches an operation when the kinds
// are equal and Path (if non-empty) is a substring of the operation's
// path. The N'th match (1-based; 0 means the first) trips the rule:
// the operation fails with Err. A sticky rule keeps failing every
// later match too — that is what a full disk does.
type Rule struct {
	Op     OpKind
	Path   string
	N      int
	Sticky bool
	Err    error
	// Short, for OpWrite rules, writes this many bytes through before
	// failing — a torn write the application is told about.
	Short int

	seen  int
	fired int
}

// NewInjectFS wraps under (the OS filesystem when nil).
func NewInjectFS(under FS) *InjectFS {
	if under == nil {
		under = osFS{}
	}
	return &InjectFS{under: under}
}

// Arm adds a rule. Returns the rule so tests can poll Fired.
func (i *InjectFS) Arm(r *Rule) *Rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, r)
	return r
}

// Disarm removes every rule: the disk "heals".
func (i *InjectFS) Disarm() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = nil
}

// Fired reports how many times the rule has injected a failure.
func (i *InjectFS) Fired(r *Rule) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return r.fired
}

// check consults the rules for an operation; a non-nil return (and,
// for writes, a short-write byte count >= 0) means the op must fail.
func (i *InjectFS) check(kind OpKind, path string) (error, int) {
	i.mu.Lock()
	defer i.mu.Unlock()
	for _, r := range i.rules {
		if r.Op != kind {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		n := r.N
		if n == 0 {
			n = 1
		}
		if r.seen == n || (r.Sticky && r.seen >= n) {
			r.fired++
			return fmt.Errorf("simfs: injected %s on %s: %w", kind, path, r.Err), r.Short
		}
	}
	return nil, 0
}

func (i *InjectFS) Create(path string) (File, error) {
	if err, _ := i.check(OpCreate, path); err != nil {
		return nil, err
	}
	f, err := i.under.Create(path)
	if err != nil {
		return nil, err
	}
	return &injectFile{f: f, fs: i, path: path}, nil
}

func (i *InjectFS) Open(path string) (File, error) { return i.under.Open(path) }

func (i *InjectFS) OpenDir(dir string) (File, error) {
	f, err := i.under.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return &injectFile{f: f, fs: i, path: dir, dir: true}, nil
}

func (i *InjectFS) Rename(from, to string) error {
	if err, _ := i.check(OpRename, from); err != nil {
		return err
	}
	return i.under.Rename(from, to)
}

func (i *InjectFS) Remove(path string) error {
	if err, _ := i.check(OpRemove, path); err != nil {
		return err
	}
	return i.under.Remove(path)
}

func (i *InjectFS) ReadFile(path string) ([]byte, error) { return i.under.ReadFile(path) }

func (i *InjectFS) ReadDir(dir string) ([]fs.DirEntry, error) { return i.under.ReadDir(dir) }

func (i *InjectFS) MkdirAll(dir string, perm fs.FileMode) error {
	if err, _ := i.check(OpMkdir, dir); err != nil {
		return err
	}
	return i.under.MkdirAll(dir, perm)
}

type injectFile struct {
	f    File
	fs   *InjectFS
	path string
	dir  bool
}

func (f *injectFile) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *injectFile) Write(p []byte) (int, error) {
	if err, short := f.fs.check(OpWrite, f.path); err != nil {
		n := 0
		if short > 0 {
			if short > len(p) {
				short = len(p)
			}
			n, _ = f.f.Write(p[:short])
		}
		return n, err
	}
	return f.f.Write(p)
}

// Sync injects fsyncgate semantics: a failed fsync means the kernel
// may already have dropped the dirty pages, so the injected failure
// reports the error and the caller must treat the file state as
// unknown — never rename it into place, never retry the fsync and
// carry on.
func (f *injectFile) Sync() error {
	kind := OpSync
	if f.dir {
		kind = OpSyncDir
	}
	if err, _ := f.fs.check(kind, f.path); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injectFile) Close() error { return f.f.Close() }
