package simfs

import (
	"os"
	"path"
	"path/filepath"
	"sort"
)

// Replay simulates what a crash would leave on disk after a prefix of
// a LogFS operation log, under a chosen durability model. The harness
// enumerates every prefix (every op boundary is a crash point),
// Materializes each simulated state into a real directory, and runs
// the real recovery code against it.

// Mode selects the durability model for Replay.
type Mode int

const (
	// ModeFlushed assumes every completed operation reached disk: the
	// kindest possible filesystem. Crash states differ only by how far
	// the op sequence got.
	ModeFlushed Mode = iota
	// ModeStrict assumes nothing survives except what was explicitly
	// fsynced: file data is durable only up to the last OpSync on that
	// file, and directory entries (creates, renames, removes) are
	// durable only as of the last OpSyncDir on their directory. This is
	// the POSIX-pessimal model ALICE checks against.
	ModeStrict
	// ModeTorn is ModeFlushed except the final operation, if it is a
	// write, lands only half its bytes — the classic torn sector on the
	// very write the crash interrupted.
	ModeTorn
)

var modeNames = [...]string{"flushed", "strict", "torn"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return "mode?"
}

// State is a simulated post-crash filesystem image.
type State struct {
	// Files maps slash-separated paths (relative to the LogFS root) to
	// file contents.
	Files map[string][]byte
	// Dirs lists every directory observed in the log, so Materialize
	// can recreate empty ones. Directory creation is treated as always
	// durable; the interesting hazards in this codebase are all at the
	// file layer.
	Dirs []string
}

// inode is one file's data, tracked as the bytes written (volatile)
// and the bytes covered by the last fsync (durable).
type inode struct {
	volatile []byte
	durable  []byte
}

// dirState is one directory's name table: the entries as the
// application sees them (volatile) and the entries committed by the
// last directory fsync (durable). A rename inside a directory commits
// atomically because the whole table is committed at once.
type dirState struct {
	volatile map[string]*inode
	durable  map[string]*inode
}

func newDirState() *dirState {
	return &dirState{volatile: map[string]*inode{}, durable: map[string]*inode{}}
}

// Replay returns the simulated crash state after applying ops under
// mode. Apply it to a prefix of a LogFS log to model a crash at that
// op boundary: Replay(ops[:n], mode).
func Replay(ops []Op, mode Mode) *State {
	if mode == ModeTorn && len(ops) > 0 && ops[len(ops)-1].Kind == OpWrite {
		last := ops[len(ops)-1]
		torn := make([]Op, len(ops))
		copy(torn, ops)
		torn[len(ops)-1] = Op{Kind: OpWrite, Path: last.Path, Data: last.Data[:len(last.Data)/2]}
		ops = torn
	}

	dirs := map[string]*dirState{}
	dir := func(p string) *dirState {
		d := path.Dir(p)
		ds := dirs[d]
		if ds == nil {
			ds = newDirState()
			dirs[d] = ds
		}
		return ds
	}
	for _, op := range ops {
		switch op.Kind {
		case OpCreate:
			dir(op.Path).volatile[path.Base(op.Path)] = &inode{}
		case OpWrite:
			ds := dir(op.Path)
			ino := ds.volatile[path.Base(op.Path)]
			if ino == nil {
				ino = &inode{}
				ds.volatile[path.Base(op.Path)] = ino
			}
			ino.volatile = append(ino.volatile, op.Data...)
		case OpSync:
			if ino := dir(op.Path).volatile[path.Base(op.Path)]; ino != nil {
				ino.durable = append(ino.durable[:0:0], ino.volatile...)
			}
		case OpRename:
			src := dir(op.Path)
			ino := src.volatile[path.Base(op.Path)]
			delete(src.volatile, path.Base(op.Path))
			if ino == nil {
				ino = &inode{}
			}
			dir(op.To).volatile[path.Base(op.To)] = ino
		case OpRemove:
			delete(dir(op.Path).volatile, path.Base(op.Path))
		case OpSyncDir:
			ds := dirs[op.Path]
			if ds == nil {
				ds = newDirState()
				dirs[op.Path] = ds
			}
			ds.durable = make(map[string]*inode, len(ds.volatile))
			for name, ino := range ds.volatile {
				ds.durable[name] = ino
			}
		case OpMkdir:
			if dirs[op.Path] == nil {
				dirs[op.Path] = newDirState()
			}
		}
	}

	st := &State{Files: map[string][]byte{}}
	for d, ds := range dirs {
		st.Dirs = append(st.Dirs, d)
		table := ds.volatile
		if mode == ModeStrict {
			table = ds.durable
		}
		for name, ino := range table {
			data := ino.volatile
			if mode == ModeStrict {
				data = ino.durable
			}
			st.Files[path.Join(d, name)] = append([]byte(nil), data...)
		}
	}
	sort.Strings(st.Dirs)
	return st
}

// Materialize writes st into root (which must exist and should be
// empty) on the real filesystem, so recovery code can be run against
// the simulated crash image with plain OS I/O.
func Materialize(st *State, root string) error {
	for _, d := range st.Dirs {
		if d == "." {
			continue
		}
		if err := os.MkdirAll(filepath.Join(root, filepath.FromSlash(d)), 0o777); err != nil {
			return err
		}
	}
	for p, data := range st.Files {
		full := filepath.Join(root, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			return err
		}
		if err := os.WriteFile(full, data, 0o666); err != nil {
			return err
		}
	}
	return nil
}
