package simfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// atomicWrite is the canonical durable-write sequence (mirroring
// boardio.AtomicWrite) expressed directly against an FS — the ops the
// replay model must understand.
func atomicWrite(t *testing.T, fsys FS, path string, data []byte) {
	t.Helper()
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	d, err := fsys.OpenDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Close()
}

// TestLogFSWritesThrough: LogFS is not a mock — the bytes land on the
// real disk, and the log records the exact op sequence.
func TestLogFSWritesThrough(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	atomicWrite(t, l, filepath.Join(root, "a.txt"), []byte("hello"))

	got, err := os.ReadFile(filepath.Join(root, "a.txt"))
	if err != nil || string(got) != "hello" {
		t.Fatalf("file on disk = %q, %v; want hello", got, err)
	}
	want := []OpKind{OpCreate, OpWrite, OpSync, OpRename, OpSyncDir}
	ops := l.Ops()
	if len(ops) != len(want) {
		t.Fatalf("logged %d ops, want %d: %+v", len(ops), len(want), ops)
	}
	for i, k := range want {
		if ops[i].Kind != k {
			t.Errorf("op %d = %v, want %v", i, ops[i].Kind, k)
		}
	}
	if ops[3].Path != "a.txt.tmp" || ops[3].To != "a.txt" {
		t.Errorf("rename logged as %q -> %q", ops[3].Path, ops[3].To)
	}
	if string(ops[1].Data) != "hello" {
		t.Errorf("write payload = %q", ops[1].Data)
	}
}

// TestReplayAtomicWrite walks every crash point of one atomic write in
// every mode and asserts the cornerstone property: the target file is
// either absent or holds exactly the full new content — never a torn
// or empty version — in all modes, including strict and torn.
func TestReplayAtomicWrite(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	atomicWrite(t, l, filepath.Join(root, "a.txt"), []byte("new-content"))
	ops := l.Ops()

	for _, mode := range []Mode{ModeFlushed, ModeStrict, ModeTorn} {
		for n := 0; n <= len(ops); n++ {
			st := Replay(ops[:n], mode)
			if data, ok := st.Files["a.txt"]; ok {
				if string(data) != "new-content" {
					t.Errorf("mode %v crash@%d: a.txt = %q, want full content or absence",
						mode, n, data)
				}
			}
		}
		// And after the full sequence the file must be there.
		st := Replay(ops, mode)
		if string(st.Files["a.txt"]) != "new-content" {
			t.Errorf("mode %v full replay: a.txt = %q", mode, st.Files["a.txt"])
		}
	}
}

// TestReplayOverwriteKeepsOldOrNew: overwriting a durable file via the
// atomic sequence yields old content or new content at every crash
// point — never a mix, never absence (strict mode: the old dirent
// stays durable until the directory fsync commits the rename).
func TestReplayOverwriteKeepsOldOrNew(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	path := filepath.Join(root, "f")
	atomicWrite(t, l, path, []byte("v1"))
	atomicWrite(t, l, path, []byte("v2"))
	ops := l.Ops()
	preamble := 5 // ops of the first write

	for _, mode := range []Mode{ModeFlushed, ModeStrict, ModeTorn} {
		for n := preamble; n <= len(ops); n++ {
			st := Replay(ops[:n], mode)
			data, ok := st.Files["f"]
			if !ok {
				t.Errorf("mode %v crash@%d: f missing — old version destroyed before new one committed", mode, n)
				continue
			}
			if s := string(data); s != "v1" && s != "v2" {
				t.Errorf("mode %v crash@%d: f = %q, want v1 or v2", mode, n, s)
			}
		}
	}
}

// TestStrictModeExposesMissingFsync: the bug class the harness exists
// to catch. A writer that skips the file fsync before rename looks
// fine under ModeFlushed but ModeStrict shows the crash hazard — a
// committed name pointing at an empty file.
func TestStrictModeExposesMissingFsync(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	path := filepath.Join(root, "g")
	tmp := path + ".tmp"

	f, _ := l.Create(tmp)
	f.Write([]byte("data"))
	f.Close() // BUG: no Sync
	l.Rename(tmp, path)
	d, _ := l.OpenDir(root)
	d.Sync()
	d.Close()

	ops := l.Ops()
	if st := Replay(ops, ModeFlushed); string(st.Files["g"]) != "data" {
		t.Fatalf("flushed mode should hide the bug, got %q", st.Files["g"])
	}
	st := Replay(ops, ModeStrict)
	data, ok := st.Files["g"]
	if !ok {
		t.Fatal("strict mode lost the file entirely; want committed name with lost data")
	}
	if len(data) != 0 {
		t.Fatalf("strict mode: g = %q; the unfsynced data should be gone", data)
	}
}

// TestReplayRemove: a removed file stays visible in strict mode until
// its directory is fsynced.
func TestReplayRemove(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	path := filepath.Join(root, "r")
	atomicWrite(t, l, path, []byte("x"))
	if err := l.Remove(path); err != nil {
		t.Fatal(err)
	}
	ops := l.Ops()

	if st := Replay(ops, ModeFlushed); len(st.Files) != 0 {
		t.Errorf("flushed: files remain after remove: %v", st.Files)
	}
	if st := Replay(ops, ModeStrict); string(st.Files["r"]) != "x" {
		t.Errorf("strict: unsynced remove should leave the durable file, got %v", st.Files)
	}
	d, _ := l.OpenDir(root)
	d.Sync()
	d.Close()
	if st := Replay(l.Ops(), ModeStrict); len(st.Files) != 0 {
		t.Errorf("strict after dir sync: remove should be durable, got %v", st.Files)
	}
}

// TestReplayTornWrite: torn mode halves exactly the final write.
func TestReplayTornWrite(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	f, _ := l.Create(filepath.Join(root, "t"))
	f.Write([]byte("aabb"))
	f.Write([]byte("ccdd"))
	f.Close()
	ops := l.Ops()

	st := Replay(ops, ModeTorn)
	if string(st.Files["t"]) != "aabbcc" {
		t.Fatalf("torn: t = %q, want aabbcc (first write whole, last write halved)", st.Files["t"])
	}
	if st := Replay(ops, ModeFlushed); string(st.Files["t"]) != "aabbccdd" {
		t.Fatalf("flushed: t = %q", st.Files["t"])
	}
}

// TestMaterializeRoundTrip: a replayed state lands on a real directory
// exactly as simulated, including subdirectories.
func TestMaterializeRoundTrip(t *testing.T) {
	root := t.TempDir()
	l := NewLogFS(root)
	if err := l.MkdirAll(filepath.Join(root, "sub", "deep"), 0o777); err != nil {
		t.Fatal(err)
	}
	atomicWrite(t, l, filepath.Join(root, "sub", "deep", "f"), []byte("payload"))

	st := Replay(l.Ops(), ModeStrict)
	out := t.TempDir()
	if err := Materialize(st, out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(out, "sub", "deep", "f"))
	if err != nil || string(got) != "payload" {
		t.Fatalf("materialized file = %q, %v", got, err)
	}
}

// TestSwapRestores: Swap installs and restores the package FS.
func TestSwapRestores(t *testing.T) {
	l := NewLogFS(t.TempDir())
	prev := Swap(l)
	if prev != nil {
		t.Fatalf("expected OS default (nil prev), got %T", prev)
	}
	if Current() != FS(l) {
		t.Fatal("Current did not return the installed FS")
	}
	if got := Swap(nil); got != FS(l) {
		t.Fatalf("Swap(nil) returned %T", got)
	}
	if _, ok := Current().(osFS); !ok {
		t.Fatalf("Current after restore = %T, want osFS", Current())
	}
}

// TestInjectFS: rules fire on the Nth match, stick when asked, carry
// real errnos through wrapping, and short writes deliver a prefix.
func TestInjectFS(t *testing.T) {
	root := t.TempDir()
	inj := NewInjectFS(nil)

	// Nth-match, non-sticky.
	inj.Arm(&Rule{Op: OpCreate, Path: "victim", N: 2, Err: syscall.ENOSPC})
	if _, err := inj.Create(filepath.Join(root, "victim1")); err != nil {
		t.Fatalf("first create should pass: %v", err)
	}
	_, err := inj.Create(filepath.Join(root, "victim2"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second create: err = %v, want ENOSPC", err)
	}
	if f, err := inj.Create(filepath.Join(root, "victim3")); err != nil {
		t.Fatalf("third create should pass (non-sticky): %v", err)
	} else {
		f.Close()
	}

	// Sticky sync failure.
	inj.Disarm()
	r := inj.Arm(&Rule{Op: OpSync, Sticky: true, Err: syscall.EIO})
	f, err := inj.Create(filepath.Join(root, "s"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d: err = %v, want EIO", i, err)
		}
	}
	f.Close()
	if inj.Fired(r) != 3 {
		t.Fatalf("rule fired %d times, want 3", inj.Fired(r))
	}

	// Short write: a prefix lands, the error surfaces.
	inj.Disarm()
	inj.Arm(&Rule{Op: OpWrite, Err: io.ErrShortWrite, Short: 3})
	f, err = inj.Create(filepath.Join(root, "w"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	f.Close()
	got, _ := os.ReadFile(filepath.Join(root, "w"))
	if string(got) != "abc" {
		t.Fatalf("short write landed %q, want abc", got)
	}
}
