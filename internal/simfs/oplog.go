package simfs

import (
	"io/fs"
	"path/filepath"
	"strings"
	"sync"
)

// OpKind names one logged filesystem operation.
type OpKind int

const (
	OpCreate OpKind = iota // create/truncate a file
	OpWrite                // append bytes to an open file
	OpSync                 // fsync a file's data
	OpRename               // rename a file
	OpRemove               // unlink a file
	OpSyncDir              // fsync a directory's entries
	OpMkdir                // create a directory chain
)

var opNames = [...]string{"create", "write", "sync", "rename", "remove", "syncdir", "mkdir"}

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return "op?"
}

// Op is one logged operation. Paths are slash-separated and relative
// to the LogFS root (paths outside the root are kept absolute, which
// simply means Replay treats them as their own namespace). Data is a
// private copy of the written bytes.
type Op struct {
	Kind OpKind
	Path string
	To   string // rename target
	Data []byte // OpWrite payload
}

// LogFS writes through to an underlying filesystem while recording
// every mutating operation. Reads pass through unlogged. The log is
// append-only and mutex-guarded; Ops returns a snapshot copy.
//
// The recording model assumes what this codebase guarantees: files are
// written sequentially through a handle obtained from Create and never
// modified after rename, so an OpWrite can be attributed to the path
// the handle was created under.
type LogFS struct {
	root  string
	under FS

	mu  sync.Mutex
	ops []Op
}

// NewLogFS records operations relative to root, writing through to the
// real OS filesystem.
func NewLogFS(root string) *LogFS {
	return &LogFS{root: root, under: osFS{}}
}

// Ops returns a copy of the operation log.
func (l *LogFS) Ops() []Op {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Op, len(l.ops))
	copy(out, l.ops)
	return out
}

// Len reports the number of logged operations.
func (l *LogFS) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ops)
}

func (l *LogFS) rel(path string) string {
	r, err := filepath.Rel(l.root, path)
	if err != nil || strings.HasPrefix(r, "..") {
		return filepath.ToSlash(path)
	}
	return filepath.ToSlash(r)
}

func (l *LogFS) record(op Op) {
	l.mu.Lock()
	l.ops = append(l.ops, op)
	l.mu.Unlock()
}

func (l *LogFS) Create(path string) (File, error) {
	f, err := l.under.Create(path)
	if err != nil {
		return nil, err
	}
	l.record(Op{Kind: OpCreate, Path: l.rel(path)})
	return &logFile{f: f, log: l, path: l.rel(path)}, nil
}

func (l *LogFS) Open(path string) (File, error) { return l.under.Open(path) }

func (l *LogFS) OpenDir(dir string) (File, error) {
	f, err := l.under.OpenDir(dir)
	if err != nil {
		return nil, err
	}
	return &logFile{f: f, log: l, path: l.rel(dir), dir: true}, nil
}

func (l *LogFS) Rename(from, to string) error {
	if err := l.under.Rename(from, to); err != nil {
		return err
	}
	l.record(Op{Kind: OpRename, Path: l.rel(from), To: l.rel(to)})
	return nil
}

func (l *LogFS) Remove(path string) error {
	if err := l.under.Remove(path); err != nil {
		return err
	}
	l.record(Op{Kind: OpRemove, Path: l.rel(path)})
	return nil
}

func (l *LogFS) ReadFile(path string) ([]byte, error) { return l.under.ReadFile(path) }

func (l *LogFS) ReadDir(dir string) ([]fs.DirEntry, error) { return l.under.ReadDir(dir) }

func (l *LogFS) MkdirAll(dir string, perm fs.FileMode) error {
	if err := l.under.MkdirAll(dir, perm); err != nil {
		return err
	}
	l.record(Op{Kind: OpMkdir, Path: l.rel(dir)})
	return nil
}

// logFile wraps an open handle, attributing writes and syncs to the
// path it was opened under.
type logFile struct {
	f    File
	log  *LogFS
	path string
	dir  bool
}

func (lf *logFile) Read(p []byte) (int, error) { return lf.f.Read(p) }

func (lf *logFile) Write(p []byte) (int, error) {
	n, err := lf.f.Write(p)
	if n > 0 {
		data := make([]byte, n)
		copy(data, p[:n])
		lf.log.record(Op{Kind: OpWrite, Path: lf.path, Data: data})
	}
	return n, err
}

func (lf *logFile) Sync() error {
	if err := lf.f.Sync(); err != nil {
		return err
	}
	kind := OpSync
	if lf.dir {
		kind = OpSyncDir
	}
	lf.log.record(Op{Kind: kind, Path: lf.path})
	return nil
}

func (lf *logFile) Close() error { return lf.f.Close() }
