// Package simfs is the filesystem seam behind every durable write in
// the repository. The boardio snapshot codec, the grrd job journal and
// the fleet's EPOCH fencing all perform their file I/O through the
// package-level FS installed here, which is the real OS filesystem by
// default and costs one atomic pointer load per operation.
//
// Swapping the FS is what powers the crash-consistency tooling:
//
//   - LogFS records the exact sequence of create/write/sync/rename/
//     remove/syncdir operations while still writing through to disk.
//   - Replay re-simulates that operation log up to an arbitrary crash
//     point under configurable durability semantics (everything
//     flushed, unfsynced data dropped, final write torn) and
//     Materialize turns the simulated state into a real directory that
//     recovery code can be pointed at.
//   - InjectFS fails chosen operations with real errno values (ENOSPC,
//     EIO, short write, fsync failure) to drive the degraded-disk
//     runtime paths.
//
// The interface is deliberately tiny: it covers exactly the operations
// the durable paths use, nothing more. Read-only paths (loading a
// snapshot, scanning a journal) also route through it so injection can
// reach them, but LogFS does not record reads — reads have no effect
// on crash state.
package simfs

import (
	"io"
	"io/fs"
	"os"
	"sync/atomic"
)

// File is an open file handle. Write-side users (AtomicWrite) use
// Write/Sync/Close; read-side users (LoadSnapshot, readJobPath) use
// Read/Close. Directory handles returned by OpenDir support only
// Sync/Close.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS is the set of filesystem operations the durable paths perform.
type FS interface {
	// Create makes (or truncates) a file for writing.
	Create(path string) (File, error)
	// Open opens a file for reading.
	Open(path string) (File, error)
	// OpenDir opens a directory so its entries can be fsynced; callers
	// use only Sync and Close on the returned handle.
	OpenDir(dir string) (File, error)
	Rename(from, to string) error
	Remove(path string) error
	ReadFile(path string) ([]byte, error)
	ReadDir(dir string) ([]fs.DirEntry, error)
	MkdirAll(dir string, perm fs.FileMode) error
}

// osFS is the passthrough implementation; the zero value is ready.
type osFS struct{}

func (osFS) Create(path string) (File, error)          { return os.Create(path) }
func (osFS) Open(path string) (File, error)            { return os.Open(path) }
func (osFS) OpenDir(dir string) (File, error)          { return os.Open(dir) }
func (osFS) Rename(from, to string) error              { return os.Rename(from, to) }
func (osFS) Remove(path string) error                  { return os.Remove(path) }
func (osFS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error) { return os.ReadDir(dir) }
func (osFS) MkdirAll(dir string, perm fs.FileMode) error {
	return os.MkdirAll(dir, perm)
}

// OS returns the passthrough OS filesystem.
func OS() FS { return osFS{} }

// box wraps the interface value so it fits in an atomic.Pointer.
type box struct{ fs FS }

// current is the installed filesystem; nil means the OS filesystem.
// An atomic pointer for the same reason as boardio's IOSeam: tests
// flip it while server goroutines are mid-write.
var current atomic.Pointer[box]

// Current returns the installed filesystem, defaulting to the OS.
func Current() FS {
	if b := current.Load(); b != nil && b.fs != nil {
		return b.fs
	}
	return osFS{}
}

// Swap installs fsys as the package filesystem (nil restores direct OS
// I/O) and returns the previously installed one so tests can restore
// it. Like boardio.SetIOSeam, this is process-global: tests that swap
// it must not run in parallel with other filesystem-touching tests.
func Swap(fsys FS) FS {
	var prev *box
	if fsys == nil {
		prev = current.Swap(nil)
	} else {
		prev = current.Swap(&box{fs: fsys})
	}
	if prev == nil {
		return nil
	}
	return prev.fs
}
