package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// routeFingerprint renders every placed segment and via of every
// connection into a canonical string, so two runs can be compared route
// by route rather than just through aggregate counters.
func routeFingerprint(run *experiment.Run) string {
	var sb strings.Builder
	for i := range run.Strung.Conns {
		rt := run.Router.RouteOf(i)
		fmt.Fprintf(&sb, "conn %d method %v\n", i, rt.Method)
		for _, ps := range rt.Segs {
			fmt.Fprintf(&sb, "  seg L%d ch%d %v\n", ps.Layer, ps.Seg.Channel(), ps.Seg.Interval())
		}
		for _, pv := range rt.Vias {
			fmt.Fprintf(&sb, "  via %v\n", pv.At)
		}
	}
	return sb.String()
}

// TestRoutingIsDeterministic routes the same board twice through the
// whole pipeline and demands bit-identical results: equal Metrics structs
// and an identical segment/via chain for every connection. The scratch
// engine reuses marks, heaps and ban sets across searches, so any stale
// state leaking between generations — or any heap ordering that isn't the
// strict (cost, seq) total order — shows up here as a diff between two
// runs that saw identical inputs.
func TestRoutingIsDeterministic(t *testing.T) {
	spec := workload.Table1Specs()[3].Scale(3) // coproc, reduced
	opts := core.DefaultOptions()

	run1, err := experiment.RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	run2, err := experiment.RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	if run1.Result.Metrics != run2.Result.Metrics {
		t.Errorf("metrics differ between identical runs:\n run1 %+v\n run2 %+v",
			run1.Result.Metrics, run2.Result.Metrics)
	}
	fp1, fp2 := routeFingerprint(run1), routeFingerprint(run2)
	if fp1 != fp2 {
		l1, l2 := strings.Split(fp1, "\n"), strings.Split(fp2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("route chains diverge at line %d:\n run1: %s\n run2: %s", i, l1[i], l2[i])
			}
		}
		t.Fatalf("route chains differ in length: %d vs %d lines", len(l1), len(l2))
	}
	if run1.Result.Metrics.Routed == 0 {
		t.Fatal("degenerate test: nothing routed")
	}
}
