// Package repro's root benchmark harness regenerates every quantitative
// result in the paper's evaluation (Table 1) and every in-text
// performance claim, one benchmark per experiment. See DESIGN.md §5 for
// the experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
//
// Run everything:
//
//	go test -bench=. -benchmem .
//
// Custom metrics reported alongside ns/op:
//
//	routed%     completed connections
//	lee%        connections needing Lee's algorithm (Table 1 "% lee")
//	ripups      connections ripped up (Table 1 "rip ups")
//	vias/conn   vias added per connection (Table 1 "vias")
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/board"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/layer"
	"repro/internal/lee"
	"repro/internal/stringer"
	"repro/internal/tuning"
	"repro/internal/workload"
)

// reportRun attaches the Table 1 metrics to a benchmark.
func reportRun(b *testing.B, res core.Result) {
	m := res.Metrics
	if m.Connections > 0 {
		b.ReportMetric(100*float64(m.Routed)/float64(m.Connections), "routed%")
	}
	b.ReportMetric(100*m.LeeShare(), "lee%")
	b.ReportMetric(float64(m.RipUps), "ripups")
	b.ReportMetric(m.ViasPerConn(), "vias/conn")
}

// benchBoard routes one Table 1 board per iteration.
func benchBoard(b *testing.B, name string, mutate func(*core.Options)) {
	spec, ok := workload.Table1Spec(name)
	if !ok {
		b.Fatalf("unknown board %s", name)
	}
	opts := core.DefaultOptions()
	if mutate != nil {
		mutate(&opts)
	}
	var last core.Result
	for i := 0; i < b.N; i++ {
		run, err := experiment.RouteSpec(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = run.Result
	}
	reportRun(b, last)
}

// --- Experiment T1: Table 1, one benchmark per row -----------------------

func BenchmarkTable1_kdj11_2L(b *testing.B) { benchBoard(b, "kdj11-2L", nil) } // the published failure
func BenchmarkTable1_nmc_4L(b *testing.B)   { benchBoard(b, "nmc-4L", nil) }
func BenchmarkTable1_dpath(b *testing.B)    { benchBoard(b, "dpath", nil) }
func BenchmarkTable1_coproc(b *testing.B)   { benchBoard(b, "coproc", nil) }
func BenchmarkTable1_kdj11_4L(b *testing.B) { benchBoard(b, "kdj11-4L", nil) }
func BenchmarkTable1_icache(b *testing.B)   { benchBoard(b, "icache", nil) }
func BenchmarkTable1_nmc_6L(b *testing.B)   { benchBoard(b, "nmc-6L", nil) }
func BenchmarkTable1_dcache(b *testing.B)   { benchBoard(b, "dcache", nil) }
func BenchmarkTable1_tna(b *testing.B)      { benchBoard(b, "tna", nil) }

// --- Experiment E-STR: connection ordering (Section 3) -------------------
// The paper fed the same problem with nearest-neighbor and with random
// stringing: both completed, but the random version ran 25× longer
// (50 vs 2 CPU minutes). Escalation is disabled so the arms compare the
// plain algorithm.

func benchStringing(b *testing.B, random bool) {
	spec, _ := workload.Table1Spec("nmc-4L")
	opts := core.DefaultOptions()
	opts.Escalate = false
	var last core.Result
	for i := 0; i < b.N; i++ {
		run, err := experiment.RouteSpecStrung(spec, opts, stringer.Options{Random: random, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		last = run.Result
	}
	reportRun(b, last)
}

func BenchmarkStringing_Ordered(b *testing.B) { benchStringing(b, false) }
func BenchmarkStringing_Random(b *testing.B)  { benchStringing(b, true) }

// --- Experiment E-VMAP: the via map (Section 4) --------------------------
// Via-availability probes outnumber updates by orders of magnitude;
// maintaining the map instead of probing every layer's channels is a
// significant win.

func benchViaMap(b *testing.B, useMap bool) {
	// Lee-heavy traffic dominates via probing; the paper's 10²–10⁴
	// probe/update ratios come from exactly such boards.
	spec, _ := workload.Table1Spec("kdj11-2L")
	d, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	var probes, updates float64
	var last core.Result
	for i := 0; i < b.N; i++ {
		bd, err := board.New(d.GridConfig())
		if err != nil {
			b.Fatal(err)
		}
		bd.UseViaMap = useMap
		if err := d.PlacePins(bd); err != nil {
			b.Fatal(err)
		}
		sr, err := stringer.String(d, stringer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r, err := core.New(bd, sr.Conns, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = r.Route()
		probes = float64(bd.Vias.Probes)
		updates = float64(bd.Vias.Updates)
	}
	reportRun(b, last)
	b.ReportMetric(probes/updates, "probes/update")
}

func BenchmarkViaMap_On(b *testing.B)  { benchViaMap(b, true) }
func BenchmarkViaMap_Off(b *testing.B) { benchViaMap(b, false) }

// --- Experiment E-CHAN: channel list vs binary tree (Section 12) ---------
// "The change from binary tree to doubly linked list with a moving
// head-of-list pointer halved the running time on most problems." The
// benchmark replays an identical, locality-heavy operation trace — the
// router's access pattern — against both structures.

type chanOp struct {
	kind byte // 'a' add, 'r' remove, 'p' probe
	lo   int
	hi   int
}

// channelTrace builds a deterministic router-like trace: bursts of nearby
// probes with occasional inserts and removals, the cursor-friendly
// pattern the paper describes. The trace is a pure function of its own
// local rng — never the global math/rand stream — so the two structure
// benchmarks always replay identical operations.
func channelTrace(seed int64, length, n int) []chanOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]chanOp, 0, n)
	center := length / 2
	for len(ops) < n {
		// A routing episode works a small neighborhood.
		center += rng.Intn(21) - 10
		if center < 10 {
			center = 10
		}
		if center > length-10 {
			center = length - 10
		}
		for burst := 0; burst < 24 && len(ops) < n; burst++ {
			pos := center + rng.Intn(15) - 7
			if pos < 0 || pos >= length {
				continue
			}
			switch rng.Intn(10) {
			case 0:
				ops = append(ops, chanOp{'a', pos, min(length-1, pos+rng.Intn(4))})
			case 1:
				ops = append(ops, chanOp{'r', pos, pos})
			default:
				ops = append(ops, chanOp{'p', pos, pos})
			}
		}
	}
	return ops
}

func BenchmarkChannel_List(b *testing.B) {
	const length = 660 // a 22-inch board edge in grid units
	ops := channelTrace(99, length, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := layer.NewLayer(grid.Vertical, 0, 1, length)
		c := l.Chan(0)
		for _, op := range ops {
			switch op.kind {
			case 'a':
				c.Add(op.lo, op.hi, 1)
			case 'r':
				if s := c.SegmentAt(op.lo); s != nil {
					c.Remove(s)
				}
			default:
				c.Free(op.lo)
			}
		}
	}
}

func BenchmarkChannel_Tree(b *testing.B) {
	const length = 660
	ops := channelTrace(99, length, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc := layer.NewTreeChannel(length)
		for _, op := range ops {
			switch op.kind {
			case 'a':
				tc.Add(op.lo, op.hi, 1)
			case 'r':
				tc.RemoveAt(op.lo)
			default:
				tc.Free(op.lo)
			}
		}
	}
}

// --- Experiment E-COST: Lee cost functions (Section 8.2, mod 3) ----------
// cost=+1 reproduces original Lee (minimum vias, huge searches);
// cost=distance is greedy; cost=distance×hops is the production choice.

func benchCost(b *testing.B, cf core.CostFn) {
	benchBoard(b, "nmc-4L", func(o *core.Options) {
		o.Cost = cf
		o.Escalate = false
	})
}

func BenchmarkCost_DistTimesHops(b *testing.B) { benchCost(b, core.CostDistTimesHops) }
func BenchmarkCost_PlusOne(b *testing.B)       { benchCost(b, core.CostPlusOne) }
func BenchmarkCost_Distance(b *testing.B)      { benchCost(b, core.CostDistance) }

// --- Experiment E-BIDIR: bidirectional wavefronts (Section 8.2, mod 2) ---
// A connection whose far end is walled in is detected as blocked almost
// immediately when wavefronts spread from both ends; a single wavefront
// from the free end floods a large part of the board first.

func walledBoard(b *testing.B) (*board.Board, []core.Connection) {
	bd, err := board.New(grid.NewConfig(60, 60, 3, 2))
	if err != nil {
		b.Fatal(err)
	}
	a := bd.Cfg.GridOf(geom.Pt(2, 30))
	c := bd.Cfg.GridOf(geom.Pt(50, 30))
	if err := bd.PlacePin(a); err != nil {
		b.Fatal(err)
	}
	if err := bd.PlacePin(c); err != nil {
		b.Fatal(err)
	}
	// Wall c in completely on both layers.
	for li := 0; li < 2; li++ {
		o := bd.Layers[li].Orient
		for dx := -4; dx <= 4; dx++ {
			for dy := -4; dy <= 4; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				p := c.Add(geom.Pt(dx, dy))
				ch, pos := bd.Cfg.ChanPos(o, p)
				bd.Layers[li].Add(ch, pos, pos, layer.KeepoutOwner)
			}
		}
	}
	return bd, []core.Connection{{A: a, B: c}}
}

func benchWavefront(b *testing.B, bidi bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bd, conns := walledBoard(b)
		opts := core.DefaultOptions()
		opts.Bidirectional = bidi
		opts.Escalate = false
		opts.CostCapFactor = 0 // measure raw blockage detection
		opts.MaxRipupRounds = 1
		r, err := core.New(bd, conns, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := r.Route()
		if res.Complete() {
			b.Fatal("walled connection should be unroutable")
		}
		b.StopTimer()
		b.ReportMetric(float64(res.Metrics.LeeExpansions), "expansions")
		b.StartTimer()
	}
}

func BenchmarkWavefront_Bidirectional(b *testing.B)  { benchWavefront(b, true) }
func BenchmarkWavefront_Unidirectional(b *testing.B) { benchWavefront(b, false) }

// --- Experiment E-NEIGH: via-hop vs cell neighbors (Section 8.2, mod 1) --
// The same board routed by grr and by the original cell-wavefront Lee
// router. grr's neighbor definition makes search cost proportional to
// segments examined, not distance.

func BenchmarkNeighbors_ViaHop(b *testing.B) {
	spec := workload.SmallSpec(31)
	opts := core.DefaultOptions()
	var last core.Result
	for i := 0; i < b.N; i++ {
		run, err := experiment.RouteSpec(spec, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = run.Result
	}
	reportRun(b, last)
}

func BenchmarkNeighbors_Cell(b *testing.B) {
	spec := workload.SmallSpec(31)
	d, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	var routed, cells float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bd, err := board.New(d.GridConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.PlacePins(bd); err != nil {
			b.Fatal(err)
		}
		sr, err := stringer.String(d, stringer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		r := lee.New(bd, lee.Options{})
		b.StartTimer()
		m := r.Route(sr.Conns)
		routed = 100 * float64(m.Routed) / float64(len(sr.Conns))
		cells = float64(m.CellsExpanded)
	}
	b.ReportMetric(routed, "routed%")
	b.ReportMetric(cells, "cells")
}

// --- Experiment E-SORT: connection sorting (Section 6) -------------------

func BenchmarkSorting_On(b *testing.B) {
	benchBoard(b, "nmc-4L", func(o *core.Options) { o.Sort = true; o.Escalate = false })
}
func BenchmarkSorting_Off(b *testing.B) {
	benchBoard(b, "nmc-4L", func(o *core.Options) { o.Sort = false; o.Escalate = false })
}

// --- Experiment E-RAD: the radius parameter (Section 8.1) ----------------
// "Typical values of radius are 1 or 2 ... Large values of radius are
// counterproductive."

func BenchmarkRadius_1(b *testing.B) { benchBoard(b, "coproc", func(o *core.Options) { o.Radius = 1 }) }
func BenchmarkRadius_2(b *testing.B) { benchBoard(b, "coproc", func(o *core.Options) { o.Radius = 2 }) }
func BenchmarkRadius_3(b *testing.B) { benchBoard(b, "coproc", func(o *core.Options) { o.Radius = 3 }) }

// --- Experiment E-TUNE: length tuning (Section 10.1) ---------------------
// "This algorithm leads to acceptable performance if there are a few tens
// of length-tuned wires on a board. It is slow for hundreds of tuned
// wires." The cost-function arm reproduces the rejected first
// implementation.

func tuningBoard(b *testing.B, seed int64, tunedNets int) (*board.Board, *core.Router, *tuning.Tuner) {
	bd, err := board.New(grid.NewConfig(110, 110, 3, 4))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var conns []core.Connection
	for i := 0; i < tunedNets; i++ {
		for {
			a := bd.Cfg.GridOf(geom.Pt(2+rng.Intn(50), 2+rng.Intn(106)))
			c := a.Add(geom.Pt((10+rng.Intn(20))*3, (rng.Intn(9)-4)*3))
			if !c.In(bd.Cfg.Bounds()) {
				continue
			}
			if bd.PlacePin(a) != nil {
				continue
			}
			if bd.PlacePin(c) != nil {
				continue
			}
			conns = append(conns, core.Connection{A: a, B: c, TargetDelayPs: 600})
			break
		}
	}
	r, err := core.New(bd, conns, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if res := r.Route(); !res.Complete() {
		b.Fatal("tuning board did not route")
	}
	return bd, r, tuning.New(bd, r, tuning.DefaultSpeeds(4), tuning.DefaultOptions())
}

func benchTuning(b *testing.B, nets int) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, _, tn := tuningBoard(b, 7, nets)
		b.StartTimer()
		results := tn.TuneAll()
		b.StopTimer()
		tuned := 0
		for _, r := range results {
			if r.Tuned {
				tuned++
			}
		}
		b.ReportMetric(100*float64(tuned)/float64(len(results)), "tuned%")
		b.StartTimer()
	}
}

func BenchmarkTuning_Tens(b *testing.B)     { benchTuning(b, 20) }
func BenchmarkTuning_Hundreds(b *testing.B) { benchTuning(b, 200) }

func BenchmarkTuning_CostFunction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, r, tn := tuningBoard(b, 7, 20)
		b.StartTimer()
		ok, attempts := 0, 0
		for ci := range r.Conns {
			res := tn.TuneByCost(ci, 40)
			attempts += res.Attempts
			if res.Ok {
				ok++
			}
		}
		b.StopTimer()
		b.ReportMetric(100*float64(ok)/float64(len(r.Conns)), "tuned%")
		b.ReportMetric(float64(attempts)/float64(len(r.Conns)), "attempts/conn")
		b.StartTimer()
	}
}

// --- Experiment E-TILE: mixed ECL/TTL boards (Section 10.2) --------------

func BenchmarkMixedTech(b *testing.B) {
	spec := workload.SmallSpec(41)
	spec.TTLFraction = 0.4
	d, err := workload.Generate(spec)
	if err != nil {
		b.Fatal(err)
	}
	var routedECL, routedTTL float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		bd, err := board.New(d.GridConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.PlacePins(bd); err != nil {
			b.Fatal(err)
		}
		sr, err := stringer.String(d, stringer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		plan := mixedPlan(bd, d)
		b.StartTimer()
		passes, err := routeMixed(bd, sr.Conns, plan)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		for _, p := range passes {
			pct := 100 * float64(p.Result.Metrics.Routed) / float64(p.Result.Metrics.Connections)
			if p.Class == "ECL" {
				routedECL = pct
			} else if p.Class == "TTL" {
				routedTTL = pct
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(routedECL, "ecl%")
	b.ReportMetric(routedTTL, "ttl%")
}

// --- Experiment E-TREE (extension): tree vs chain stringing --------------
// Section 3 notes the chain-only stringer is suboptimal because "TTL
// allows nets to be joined by trees, not just chains". The extension
// strings TTL nets as minimum spanning trees; the benchmark measures the
// wiring-demand reduction and its routing effect on a TTL-heavy board.

func benchTrees(b *testing.B, trees bool) {
	spec := workload.SmallSpec(51)
	spec.TTLFraction = 1.0
	spec.NetSizeMax = 5
	spec.TargetConns = 90
	var last core.Result
	demand := 0.0
	for i := 0; i < b.N; i++ {
		d, err := workload.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		sr, err := stringer.String(d, stringer.Options{Trees: trees})
		if err != nil {
			b.Fatal(err)
		}
		demand = float64(sr.TotalViaLen)
		bd, err := board.New(d.GridConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := d.PlacePins(bd); err != nil {
			b.Fatal(err)
		}
		r, err := core.New(bd, sr.Conns, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = r.Route()
	}
	reportRun(b, last)
	b.ReportMetric(demand, "demand-via-units")
}

func BenchmarkStringing_Chains(b *testing.B) { benchTrees(b, false) }
func BenchmarkStringing_Trees(b *testing.B)  { benchTrees(b, true) }
