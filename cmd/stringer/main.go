// Command stringer converts a board design's nets into the ordered
// pin-to-pin connection list that grr routes (Section 3): nearest-neighbor
// chaining with outputs first and a terminating resistor appended to each
// ECL net.
//
// Usage:
//
//	stringer -design coproc.brd -o coproc.con
//	stringer -design coproc.brd -random -seed 7 -o bad.con   # the 25× experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/boardio"
	"repro/internal/stringer"
)

func main() {
	var (
		design = flag.String("design", "", "input .brd file (required)")
		out    = flag.String("o", "", "output .con file (default stdout)")
		random = flag.Bool("random", false, "random pin order instead of nearest-neighbor chaining")
		seed   = flag.Int64("seed", 1, "seed for -random")
	)
	flag.Parse()
	if *design == "" {
		fmt.Fprintln(os.Stderr, "stringer: -design is required")
		os.Exit(2)
	}

	f, err := os.Open(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stringer:", err)
		os.Exit(1)
	}
	d, err := boardio.ReadDesign(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "stringer:", err)
		os.Exit(1)
	}

	res, err := stringer.String(d, stringer.Options{Random: *random, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stringer:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		file, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stringer:", err)
			os.Exit(1)
		}
		defer file.Close()
		w = file
	}
	if err := boardio.WriteConnections(w, res.Conns); err != nil {
		fmt.Fprintln(os.Stderr, "stringer:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "stringer: %d nets -> %d connections, total Manhattan length %d via units\n",
		len(d.Nets), len(res.Conns), res.TotalViaLen)
}
