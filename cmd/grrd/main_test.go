package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// grrdBin is the binary under test, built once by TestMain.
var grrdBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "grrd-test")
	if err != nil {
		panic(err)
	}
	grrdBin = filepath.Join(dir, "grrd")
	if out, err := exec.Command("go", "build", "-o", grrdBin, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("building grrd: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// daemon is one running grrd subprocess.
type daemon struct {
	cmd    *exec.Cmd
	base   string // http://ADDR from the startup line
	stderr *bytes.Buffer
	waited chan error
}

// startDaemon launches grrd with a fresh port and the given extra args,
// and blocks until the startup line announces the bound address.
func startDaemon(t *testing.T, journalDir string, extra ...string) *daemon {
	t.Helper()
	return startRawDaemon(t, append([]string{"-journal-dir", journalDir, "-workers", "1"}, extra...)...)
}

// startRawDaemon is startDaemon without the worker-mode default flags —
// the entry point the coordinator-mode tests use.
func startRawDaemon(t *testing.T, args ...string) *daemon {
	t.Helper()
	cmd := exec.Command(grrdBin, args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, stderr: &stderr, waited: make(chan error, 1)}
	t.Cleanup(func() {
		cmd.Process.Kill()
		d.wait()
	})

	sc := bufio.NewScanner(stdout)
	const banner = "grrd: listening on "
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), banner); ok {
			d.base = "http://" + strings.TrimSpace(addr)
			break
		}
	}
	if d.base == "" {
		cmd.Process.Kill()
		t.Fatalf("no %q line on stdout; stderr:\n%s", banner, stderr.String())
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go io.Copy(io.Discard, stdout)
	go func() { d.waited <- cmd.Wait() }()
	return d
}

// wait blocks until the process exits and returns its exit code.
func (d *daemon) wait() int {
	err := <-d.waited
	d.waited <- err // leave it for later callers
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// exited reports the exit code if the process has finished.
func (d *daemon) exited() (int, bool) {
	select {
	case err := <-d.waited:
		d.waited <- err
		if err == nil {
			return 0, true
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), true
		}
		return -1, true
	default:
		return 0, false
	}
}

// testSpec mirrors the internal/server test workload: a small seeded
// board, strung server-side, checkpointing every attempt.
func testSpec(t *testing.T) server.JobSpec {
	t.Helper()
	d, err := workload.Generate(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := boardio.WriteDesign(&sb, d); err != nil {
		t.Fatal(err)
	}
	return server.JobSpec{Design: sb.String(), Options: map[string]int64{"checkpointevery": 1}}
}

func testWorkload() workload.Spec {
	return workload.TinySpec(7)
}

// directRun routes the test spec in-process, exactly as the daemon
// would (same zero-progress snapshot path), returning the
// deterministic fingerprint, final metrics, and the total number of
// board mutations a complete run performs.
func directRun(t *testing.T, spec server.JobSpec) (uint64, core.Metrics, uint64) {
	t.Helper()
	d, err := boardio.ReadDesign(strings.NewReader(spec.Design))
	if err != nil {
		t.Fatal(err)
	}
	strung, err := stringer.String(d, stringer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	for name, v := range spec.Options {
		if err := boardio.ApplyOption(&opts, name, v); err != nil {
			t.Fatal(err)
		}
	}
	snap := &boardio.Snapshot{
		Design: d,
		Conns:  strung.Conns,
		Opts:   opts,
		Check: &core.Checkpoint{
			PrevUnrouted: len(strung.Conns) + 1,
			Routes:       make([]core.ConnRoute, len(strung.Conns)),
		},
	}
	b, r, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	// An armed crasher that never fires doubles as a mutation counter,
	// seeing exactly what a daemon-side -crash-at crasher would see.
	counter := faultinject.CrashAt(^uint64(0))
	b.Interpose(counter)
	res := r.Route()
	if res.Aborted != core.AbortNone || !res.Complete() {
		t.Fatalf("direct run did not complete: %v", res)
	}
	if err := b.Audit(); err != nil {
		t.Fatalf("direct run board inconsistent: %v", err)
	}
	return b.Fingerprint(), res.Metrics, counter.Mutations()
}

func postJob(t *testing.T, base string, spec server.JobSpec) (server.Status, *http.Response, error) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return server.Status{}, nil, err
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, resp, err
	}
	return st, resp, nil
}

func getStatus(t *testing.T, base, id string) (server.Status, bool) {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return server.Status{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return server.Status{}, false
	}
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return server.Status{}, false
	}
	return st, true
}

func waitDone(t *testing.T, base, id string) server.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := getStatus(t, base, id); ok && st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return server.Status{}
}

// TestDaemonLifecycle: start, probe, submit, complete, drain on SIGTERM
// with exit 0 — the straight-line operator experience, including the
// deterministic result contract against an in-process run.
func TestDaemonLifecycle(t *testing.T) {
	spec := testSpec(t)
	wantFP, wantM, _ := directRun(t, spec)

	dir := t.TempDir()
	d := startDaemon(t, dir)

	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(d.base + probe)
		if err != nil {
			t.Fatalf("GET %s: %v", probe, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", probe, resp.StatusCode)
		}
	}

	st, resp, err := postJob(t, d.base, spec)
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	fin := waitDone(t, d.base, st.ID)
	if fin.State != server.StateDone || fin.AuditOK == nil || !*fin.AuditOK {
		t.Fatalf("job did not finish clean: %+v", fin)
	}
	if want := fmt.Sprintf("%016x", wantFP); fin.Fingerprint != want {
		t.Errorf("fingerprint = %s, want %s", fin.Fingerprint, want)
	}
	if *fin.Metrics != wantM {
		t.Errorf("metrics diverged:\n got  %+v\n want %+v", *fin.Metrics, wantM)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != exitOK {
		t.Fatalf("SIGTERM exit code = %d, want %d\nstderr:\n%s", code, exitOK, d.stderr.String())
	}
	if !strings.Contains(d.stderr.String(), "grrd: drained") {
		t.Errorf("drain banner missing from stderr:\n%s", d.stderr.String())
	}
}

// TestKillAndRestartEquivalence is the acceptance test of the PR:
// SIGKILL the daemon mid-job at a spread of mutation counts (via
// -crash-at, which os.Exits from inside a board mutation — as abrupt
// as a real kill -9), restart it on the same journal, and require the
// recovered job to finish with the exact fingerprint, metrics and
// audit verdict of a run that was never interrupted.
func TestKillAndRestartEquivalence(t *testing.T) {
	spec := testSpec(t)
	wantFP, wantM, total := directRun(t, spec)
	if total < 8 {
		t.Fatalf("degenerate workload: only %d mutations", total)
	}
	// Early, one-third, two-thirds, and penultimate mutation.
	points := []uint64{1, total / 3, 2 * total / 3, total - 1}

	for _, n := range points {
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			d := startDaemon(t, dir, "-crash-at", fmt.Sprint(n))

			// The submission itself can lose the race against the crash
			// (the daemon may die before flushing the HTTP response); the
			// job is journaled before it is queued, so recovery still owns
			// it. Job IDs are deterministic: the first job is job-000000.
			const id = "job-000000"
			if _, resp, err := postJob(t, d.base, spec); err == nil && resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
			}
			if code := d.wait(); code != exitCrash {
				t.Fatalf("crash exit code = %d, want %d\nstderr:\n%s", code, exitCrash, d.stderr.String())
			}
			if !strings.Contains(d.stderr.String(), "simulated crash at mutation") {
				t.Errorf("crash banner missing:\n%s", d.stderr.String())
			}

			// Restart on the same journal, no fault injection: the job
			// must recover and converge on the uninterrupted result.
			d2 := startDaemon(t, dir)
			fin := waitDone(t, d2.base, id)
			if fin.State != server.StateDone || fin.AuditOK == nil || !*fin.AuditOK {
				t.Fatalf("recovered job did not finish clean: %+v", fin)
			}
			if want := fmt.Sprintf("%016x", wantFP); fin.Fingerprint != want {
				t.Errorf("fingerprint after crash at %d = %s, want %s", n, fin.Fingerprint, want)
			}
			if *fin.Metrics != wantM {
				t.Errorf("metrics after crash at %d diverged:\n got  %+v\n want %+v", n, *fin.Metrics, wantM)
			}
			if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}
			if code := d2.wait(); code != exitOK {
				t.Fatalf("drain exit code = %d, want %d\nstderr:\n%s", code, exitOK, d2.stderr.String())
			}
		})
	}
}

// TestDaemonMetricsEndpoint is the scrape smoke test: boot the real
// binary, route one tiny job, and require GET /metrics to serve valid
// 0.0.4 text exposition covering the job lifecycle, the latency
// histogram, and the router's own phase timings. It also pins the two
// observability side contracts: structured job-lifecycle lines on
// stderr, and no pprof surface unless -pprof is given.
func TestDaemonMetricsEndpoint(t *testing.T) {
	d := startDaemon(t, t.TempDir())

	st, resp, err := postJob(t, d.base, testSpec(t))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d, want 202", resp.StatusCode)
	}
	if fin := waitDone(t, d.base, st.ID); fin.State != server.StateDone {
		t.Fatalf("job did not finish: %+v", fin)
	}

	mresp, err := http.Get(d.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d, want 200", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	vals, err := obs.ParseExposition(mresp.Body)
	if err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}
	for _, name := range []string{
		"grr_jobs_submitted_total",
		"grr_jobs_done_total",
		"grr_job_seconds_count",
		"grr_router_routed_total",
		`grr_router_phase_seconds_count{phase="zero_via"}`,
	} {
		if vals[name] == 0 {
			t.Errorf("%s missing or zero after a routed job", name)
		}
	}

	// No -pprof flag: the debug surface must not exist.
	presp, err := http.Get(d.base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /debug/pprof/ without -pprof = %d, want 404", presp.StatusCode)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != exitOK {
		t.Fatalf("exit code = %d, want %d\nstderr:\n%s", code, exitOK, d.stderr.String())
	}
	stderr := d.stderr.String()
	for _, event := range []string{"event=job_submitted", "event=job_running", "event=job_done"} {
		if !strings.Contains(stderr, event) {
			t.Errorf("structured %s line missing from stderr:\n%s", event, stderr)
		}
	}
	if !strings.Contains(stderr, "job="+st.ID) {
		t.Errorf("lifecycle lines not stamped with %s:\n%s", st.ID, stderr)
	}
}

// TestPprofEnabled: the -pprof flag mounts net/http/pprof on the
// daemon's mux.
func TestPprofEnabled(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "-pprof")
	resp, err := http.Get(d.base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/ with -pprof = %d, want 200", resp.StatusCode)
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != exitOK {
		t.Fatalf("exit code = %d, want %d", code, exitOK)
	}
}

// TestSlowClientDoesNotStallDrain pins the slowloris fix: a client that
// opens a connection, sends half a request header, and then just holds
// the socket must not keep SIGTERM from completing. Before the server
// got read timeouts (and a bounded Shutdown), that one socket pinned
// hs.Shutdown forever.
func TestSlowClientDoesNotStallDrain(t *testing.T) {
	d := startDaemon(t, t.TempDir(), "-read-header-timeout", "200ms")

	conn, err := net.Dial("tcp", strings.TrimPrefix(d.base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Half a request: the header block never ends, and never will.
	if _, err := io.WriteString(conn, "POST /jobs HTTP/1.1\r\nHost: grrd\r\nContent-Type: app"); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(); code != exitOK {
		t.Fatalf("exit code = %d, want %d\nstderr:\n%s", code, exitOK, d.stderr.String())
	}
	// Generous bound: the header timeout is 200ms and the Shutdown
	// fallback 5s; anything near the old forever-hang fails loudly.
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Errorf("drain with a stalled client took %v", elapsed)
	}
	if !strings.Contains(d.stderr.String(), "grrd: drained") {
		t.Errorf("drain banner missing:\n%s", d.stderr.String())
	}
}

// TestUsageErrors: flag misuse exits 2 before any side effects.
func TestUsageErrors(t *testing.T) {
	out, err := exec.Command(grrdBin).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != exitUsage {
		t.Fatalf("no -journal-dir: err = %v, want exit %d\n%s", err, exitUsage, out)
	}
	if !strings.Contains(string(out), "-journal-dir is required") {
		t.Errorf("usage message missing: %s", out)
	}
}
