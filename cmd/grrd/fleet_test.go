package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/server"
)

// startCoordinator runs an in-process coordinator (race-instrumented
// when the test binary is) behind a real listener, tuned for fast
// failover: 50ms sweeps, 3 missed beats ≈ 150ms to fencing.
func startCoordinator(t *testing.T) (*fleet.Coordinator, string) {
	t.Helper()
	c := fleet.New(fleet.Config{
		HeartbeatEvery: 50 * time.Millisecond,
		HeartbeatMiss:  3,
		RetryBase:      5 * time.Millisecond,
		RetryMax:       50 * time.Millisecond,
		Logf:           t.Logf,
	})
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts.URL
}

// waitNode polls until the coordinator's view of a node satisfies ok.
func waitNode(t *testing.T, c *fleet.Coordinator, name string, ok func(fleet.NodeView) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range c.Nodes() {
			if n.Name == name && ok(n) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("node %s never reached the wanted state; fleet view: %+v", name, c.Nodes())
}

// TestFleetKillAndHandoffEquivalence is the acceptance test of the PR:
// SIGKILL a fleet worker mid-job at a spread of mutation counts (via
// -crash-at — an os.Exit from inside a board mutation), let the
// coordinator miss its heartbeats, fence its journal, and hand its job
// to a peer, and require the handed-off job to finish with the exact
// fingerprint, metrics and audit verdict of a run that was never
// interrupted. Afterwards the dead node's journal must be fenced on
// disk and unusable for a restart — the zombie path is closed, not
// just unlikely.
func TestFleetKillAndHandoffEquivalence(t *testing.T) {
	spec := testSpec(t)
	wantFP, wantM, total := directRun(t, spec)
	if total < 8 {
		t.Fatalf("degenerate workload: only %d mutations", total)
	}
	points := []uint64{1, total / 3, 2 * total / 3, total - 1}

	for _, n := range points {
		t.Run(fmt.Sprintf("crash-at-%d", n), func(t *testing.T) {
			c, coordURL := startCoordinator(t)

			// Node a is the only member when the job arrives, so placement
			// is deterministic: the job lands on the node armed to die.
			dirA := t.TempDir()
			a := startDaemon(t, dirA,
				"-node-name", "a", "-join", coordURL,
				"-heartbeat-every", "25ms", "-crash-at", fmt.Sprint(n))
			waitNode(t, c, "a", func(nv fleet.NodeView) bool { return !nv.Fenced })

			const id = "job-a-000000"
			// The submission can lose the race against the crash (worker a
			// may die before the forwarded response flushes); the job is
			// journaled on a before it runs, so failover still owns it.
			if st, resp, err := postJob(t, coordURL, spec); err == nil {
				if resp.StatusCode != http.StatusAccepted {
					t.Logf("POST /jobs = %d (crash won the race)", resp.StatusCode)
				} else if st.ID != id {
					t.Fatalf("forwarded job ID = %s, want %s", st.ID, id)
				}
			}
			if code := a.wait(); code != exitCrash {
				t.Fatalf("crash exit code = %d, want %d\nstderr:\n%s", code, exitCrash, a.stderr.String())
			}

			// A clean peer joins; the coordinator fences the corpse and
			// hands the journaled job over.
			b := startDaemon(t, t.TempDir(),
				"-node-name", "b", "-join", coordURL, "-heartbeat-every", "25ms")
			defer func() {
				b.cmd.Process.Kill()
			}()
			waitNode(t, c, "a", func(nv fleet.NodeView) bool { return nv.Fenced })

			fin := waitDone(t, coordURL, id)
			if fin.State != server.StateDone || fin.AuditOK == nil || !*fin.AuditOK {
				t.Fatalf("handed-off job did not finish clean: %+v", fin)
			}
			if want := fmt.Sprintf("%016x", wantFP); fin.Fingerprint != want {
				t.Errorf("fingerprint after kill at %d = %s, want %s", n, fin.Fingerprint, want)
			}
			if *fin.Metrics != wantM {
				t.Errorf("metrics after kill at %d diverged:\n got  %+v\n want %+v", n, *fin.Metrics, wantM)
			}

			// The fence is durable: the EPOCH file says so, and a daemon
			// restarted on the dead node's journal is refused at startup.
			epoch, fenced, err := server.ReadEpoch(dirA)
			if err != nil {
				t.Fatal(err)
			}
			if !fenced || epoch != 2 {
				t.Errorf("dead node journal epoch = %d fenced=%v, want 2 fenced", epoch, fenced)
			}
			out, err := exec.Command(grrdBin, "-journal-dir", dirA).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != exitInternal {
				t.Fatalf("restart on fenced journal: err = %v, want exit %d\n%s", err, exitInternal, out)
			}
			if !strings.Contains(string(out), "fenced") {
				t.Errorf("fenced-restart refusal does not say why:\n%s", out)
			}
		})
	}
}

// TestFleetCoordinatorMode exercises the grrd -coordinator binary
// end-to-end: a subprocess coordinator, a subprocess worker joining
// it, a job submitted through the front door, and — the router being
// deterministic — a second identical submission answered straight from
// the design-fingerprint route cache without touching a worker.
func TestFleetCoordinatorMode(t *testing.T) {
	spec := testSpec(t)
	wantFP, _, _ := directRun(t, spec)

	coord := startCoordinatorDaemon(t)
	w := startDaemon(t, t.TempDir(),
		"-node-name", "w", "-join", coord.base, "-heartbeat-every", "25ms")
	defer w.cmd.Process.Kill()

	// The coordinator is not ready until a worker is schedulable.
	waitReadyz(t, coord.base)

	st, resp, err := postJob(t, coord.base, spec)
	if err != nil {
		t.Fatalf("POST /jobs via coordinator: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs via coordinator = %d, want 202", resp.StatusCode)
	}
	if resp.Header.Get("X-Grr-Node") != "w" {
		t.Errorf("X-Grr-Node = %q, want w", resp.Header.Get("X-Grr-Node"))
	}
	fin := waitDone(t, coord.base, st.ID)
	if fin.State != server.StateDone {
		t.Fatalf("job via coordinator: %+v", fin)
	}
	if want := fmt.Sprintf("%016x", wantFP); fin.Fingerprint != want {
		t.Errorf("fingerprint via coordinator = %s, want %s", fin.Fingerprint, want)
	}

	// Identical resubmission: served from the route cache, HTTP 200 (not
	// 202 — nothing was admitted), same fingerprint, marked as a hit.
	st2, resp2, err := postJob(t, coord.base, spec)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Grr-Cache") != "hit" {
		t.Fatalf("cached resubmit = %d (cache %q), want 200 hit",
			resp2.StatusCode, resp2.Header.Get("X-Grr-Cache"))
	}
	if st2.Fingerprint != fin.Fingerprint {
		t.Errorf("cached fingerprint = %s, want %s", st2.Fingerprint, fin.Fingerprint)
	}
}

// startCoordinatorDaemon launches grrd -coordinator and waits for the
// shared banner.
func startCoordinatorDaemon(t *testing.T) *daemon {
	t.Helper()
	return startRawDaemon(t, "-coordinator",
		"-heartbeat-every", "50ms", "-heartbeat-miss", "3")
}

func waitReadyz(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s/readyz never went ready", base)
}
