// Command grrd is the fault-tolerant routing daemon: an HTTP service
// that accepts board-routing jobs, runs them on a bounded worker pool,
// and journals every job crash-safely so a killed daemon resumes where
// it left off (internal/server has the full protocol).
//
// Usage:
//
//	grrd -journal-dir /var/lib/grrd
//	grrd -journal-dir d -listen 127.0.0.1:8377 -workers 8 -queue-depth 32
//	grrd -coordinator -listen 127.0.0.1:8370
//	grrd -journal-dir d -node-name a -join http://127.0.0.1:8370
//
// With -coordinator the process serves the fleet front door instead of
// routing jobs itself (internal/fleet): workers join it with -join and
// -node-name, heartbeat their load, and get fenced and failed over if
// they go quiet. Clients submit to the coordinator exactly as they
// would to a single grrd.
//
// Endpoints:
//
//	POST /jobs      submit {"design": ..., "conns": ..., "options": {...}}
//	GET  /jobs      list jobs
//	GET  /jobs/{id} one job
//	GET  /healthz   liveness
//	GET  /readyz    readiness (503 while draining)
//	GET  /metrics   Prometheus text exposition (queue, jobs, retries,
//	                journal, router search effort and phase timings)
//	GET  /debug/pprof/...  net/http/pprof, only with -pprof
//
// On startup grrd prints one line, "grrd: listening on ADDR", and then
// recovers any interrupted jobs from the journal before serving new
// ones. Job lifecycle transitions (submit → running → retrying →
// done/failed) go to stderr as structured logfmt lines stamped with
// job IDs.
//
// Exit codes:
//
//	0    drained cleanly after SIGINT/SIGTERM: every in-flight job
//	     checkpointed, journal consistent
//	1    startup failure or drain timeout
//	2    usage error
//	130  second SIGINT/SIGTERM forced an immediate exit mid-drain
//	137  simulated kill: -crash-at fired (fault injection)
//
// The first SIGINT/SIGTERM starts a graceful drain (admission stops,
// running jobs checkpoint); a second one gives up waiting and exits
// immediately — safe, because the journal is consistent at every
// instant by construction.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/board"
	"repro/internal/faultinject"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/server"
)

const (
	exitOK       = 0
	exitInternal = 1
	exitUsage    = 2
	exitForced   = 130
	exitCrash    = 137
)

func main() { os.Exit(run()) }

func run() int {
	var (
		listen     = flag.String("listen", "127.0.0.1:0", "TCP address to serve HTTP on")
		journalDir = flag.String("journal-dir", "", "job journal directory (required)")
		workers    = flag.Int("workers", 4, "routing worker pool size")
		cpuSlots   = flag.Int("cpu-slots", 0, "total routing goroutines across all jobs; bounds each job's 'workers' option to cpu-slots/workers (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 16, "max live jobs before submissions get 429")
		maxAtt     = flag.Int("max-attempts", 3, "attempts per job before it is failed")
		retryBase  = flag.Duration("retry-base", 10*time.Millisecond, "base retry backoff (doubles per attempt, jittered)")
		retryMax   = flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
		maxBudget  = flag.Duration("max-time-budget", 0, "cap every job's routing time budget (0 = leave job budgets alone)")
		ckEvery    = flag.Int("checkpoint-every", 8, "default checkpoint cadence for jobs that set none")
		drainMax   = flag.Duration("drain-timeout", 30*time.Second, "how long a graceful drain may take")
		diskProbe  = flag.Duration("disk-probe-every", 5*time.Second, "how often a disk-degraded daemon re-probes the journal disk (negative disables)")
		retrySeed  = flag.Int64("retry-seed", 0, "retry jitter RNG seed (0 = derive from entropy each start)")
		headerMax  = flag.Duration("read-header-timeout", 5*time.Second, "how long a client may take to send request headers")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		coordMode = flag.Bool("coordinator", false, "run as the fleet coordinator instead of a worker daemon")
		joinURL   = flag.String("join", "", "worker mode: coordinator base URL to join (e.g. http://127.0.0.1:8370)")
		nodeName  = flag.String("node-name", "", "worker mode: fleet-unique node name (required with -join)")
		hbEvery   = flag.Duration("heartbeat-every", time.Second, "heartbeat cadence (worker: send; coordinator: expect and sweep)")
		hbMiss    = flag.Int("heartbeat-miss", 3, "coordinator mode: missed beats before a node is fenced and failed over")
		cacheSize = flag.Int("route-cache", 64, "coordinator mode: design-fingerprint route cache entries (negative disables)")
		hedge     = flag.Duration("hedge", 0, "coordinator mode: hedge a job on a healthy peer once it has outrun this delay or the fleet's p95, whichever is larger (0 = hedging off)")
		slowFact  = flag.Float64("slow-factor", 3, "coordinator mode: latch a node slow when a latency signal exceeds this multiple of the fleet median")
		maxBody   = flag.Int64("max-body", 16<<20, "maximum request body bytes accepted on POST /jobs")

		crashAt = flag.Uint64("crash-at", 0, "fault injection: kill the process (exit 137) at the Nth board mutation across all jobs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "grrd: unexpected arguments:", flag.Args())
		return exitUsage
	}
	if *coordMode {
		if *joinURL != "" {
			fmt.Fprintln(os.Stderr, "grrd: -coordinator and -join are mutually exclusive")
			return exitUsage
		}
		return runCoordinator(*listen, *hbEvery, *hbMiss, *cacheSize, *retryBase, *retryMax, *headerMax, *hedge, *slowFact)
	}
	if *journalDir == "" {
		fmt.Fprintln(os.Stderr, "grrd: -journal-dir is required")
		return exitUsage
	}
	if *joinURL != "" && *nodeName == "" {
		fmt.Fprintln(os.Stderr, "grrd: -join requires -node-name")
		return exitUsage
	}

	reg := obs.NewRegistry()
	cfg := server.Config{
		NodeName:        *nodeName,
		Workers:         *workers,
		CPUSlots:        *cpuSlots,
		QueueDepth:      *queueDepth,
		JournalDir:      *journalDir,
		MaxAttempts:     *maxAtt,
		RetryBase:       *retryBase,
		RetryMax:        *retryMax,
		RetrySeed:       *retrySeed,
		MaxTimeBudget:   *maxBudget,
		CheckpointEvery: *ckEvery,
		DrainBudget:     *drainMax,
		DiskProbeEvery:  *diskProbe,
		MaxBodyBytes:    *maxBody,
		Metrics:         reg,
		Log:             obs.NewLogger(os.Stderr),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if *joinURL != "" {
		// Hedge commits arbitrate through the coordinator: before a
		// token-carrying job may journal a terminal state, the daemon
		// asks the coordinator's first-claimant-wins ledger. Standalone
		// daemons never carry tokens, so they never claim.
		cfg.ClaimCommit = fleet.ClaimClient(*joinURL, *nodeName, nil)
	}
	if *crashAt > 0 {
		// One crasher shared by every job board: its mutation counter
		// spans the daemon's whole life, so a test can kill the process
		// at any point in a job — or across jobs — and then verify the
		// restarted daemon recovers bit-identically.
		crasher := faultinject.CrashAt(*crashAt)
		cfg.BoardHook = func(b *board.Board) { b.Interpose(crasher) }
		cfg.OnCrash = func(c faultinject.Crash) {
			fmt.Fprintf(os.Stderr, "grrd: %v\n", c)
			os.Exit(exitCrash)
		}
	}

	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grrd:", err)
		return exitInternal
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grrd:", err)
		return exitInternal
	}
	// Catch signals before announcing the address: anyone who has seen
	// the banner may SIGTERM us, and an un-notified signal would kill
	// the process with the default action instead of draining.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// The one contractual stdout line; tests and wrappers parse it to
	// find the bound port when -listen used port 0.
	fmt.Printf("grrd: listening on %s\n", ln.Addr())

	// Fleet membership is strictly additive: the agent joins and
	// heartbeats in the background, and if the coordinator is down the
	// daemon serves its local queue exactly as a standalone grrd would.
	var agentCancel context.CancelFunc = func() {}
	if *joinURL != "" {
		agent := fleet.NewAgent(fleet.AgentConfig{
			Node:        *nodeName,
			Addr:        "http://" + ln.Addr().String(),
			Journal:     *journalDir,
			Coordinator: *joinURL,
			Server:      s,
			Every:       *hbEvery,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		var actx context.Context
		actx, agentCancel = context.WithCancel(context.Background())
		go agent.Run(actx)
	}
	defer agentCancel()

	handler := s.Handler()
	if *pprofOn {
		// Profiling is opt-in: the debug surface leaks heap contents and
		// stack traces, so it never ships on by default.
		dbg := http.NewServeMux()
		dbg.Handle("/", handler)
		dbg.HandleFunc("GET /debug/pprof/", pprof.Index)
		dbg.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = dbg
	}

	// Timeouts on every read path: without them one client holding a
	// half-sent request pins Shutdown forever (a trivial slowloris keeps
	// the daemon from ever finishing its drain).
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: *headerMax,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "grrd:", err)
		return exitInternal
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "grrd: %v: draining (again to force exit)\n", got)
	}

	// A second signal aborts the wait: the journal is consistent at
	// every instant, so dying now only costs the work since the last
	// checkpoints, never correctness.
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "grrd: %v again: forcing exit\n", got)
		os.Exit(exitForced)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), *drainMax)
	defer cancel()
	code := exitOK
	if err := s.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "grrd:", err)
		code = exitInternal
	}
	// Bound the HTTP wind-down too: Shutdown waits for in-flight
	// requests, and a stalled client must not outlast the drain budget.
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := hs.Shutdown(sdCtx); err != nil {
		hs.Close()
	}
	sdCancel()
	fmt.Fprintln(os.Stderr, "grrd: drained")
	return code
}

// runCoordinator serves the fleet coordinator on listen. It prints the
// same contractual banner as a worker, so the harnesses that parse it
// need not care which mode they launched.
func runCoordinator(listen string, hbEvery time.Duration, hbMiss, cacheSize int,
	retryBase, retryMax, headerMax, hedge time.Duration, slowFactor float64) int {
	reg := obs.NewRegistry()
	c := fleet.New(fleet.Config{
		HeartbeatEvery: hbEvery,
		HeartbeatMiss:  hbMiss,
		CacheSize:      cacheSize,
		RetryBase:      retryBase,
		RetryMax:       retryMax,
		Hedge:          hedge,
		SlowFactor:     slowFactor,
		Metrics:        reg,
		Log:            obs.NewLogger(os.Stderr),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	defer c.Close()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "grrd:", err)
		return exitInternal
	}
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	fmt.Printf("grrd: listening on %s\n", ln.Addr())

	hs := &http.Server{
		Handler:           c.Handler(),
		ReadHeaderTimeout: headerMax,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "grrd:", err)
		return exitInternal
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "grrd: %v: shutting down coordinator\n", got)
	}
	sdCtx, sdCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := hs.Shutdown(sdCtx); err != nil {
		hs.Close()
	}
	sdCancel()
	return exitOK
}
