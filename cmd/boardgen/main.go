// Command boardgen generates synthetic routing problems in the style of
// the paper's Table 1 boards and writes them in the .brd text format.
//
// Usage:
//
//	boardgen -board coproc -o coproc.brd
//	boardgen -board kdj11-2L -scale 2 -o small.brd
//	boardgen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/boardio"
	"repro/internal/workload"
)

func main() {
	var (
		name  = flag.String("board", "coproc", "Table 1 board name")
		scale = flag.Int("scale", 1, "shrink the board by this integer factor")
		seed  = flag.Int64("seed", 0, "override the preset PRNG seed (0 keeps the preset)")
		out   = flag.String("o", "", "output file (default stdout)")
		list  = flag.Bool("list", false, "list available boards and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("board      via grid   layers  target connections")
		for _, s := range workload.Table1Specs() {
			fmt.Printf("%-10s %3dx%-4d   %d       %d\n", s.Name, s.ViaCols, s.ViaRows, s.Layers, s.TargetConns)
		}
		return
	}

	spec, ok := workload.Table1Spec(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "boardgen: unknown board %q (try -list)\n", *name)
		os.Exit(2)
	}
	spec = spec.Scale(*scale)
	if *seed != 0 {
		spec.Seed = *seed
	}
	d, err := workload.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "boardgen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "boardgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := boardio.WriteDesign(w, d); err != nil {
		fmt.Fprintln(os.Stderr, "boardgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "boardgen: %s: %d parts, %d nets, %.1f pins/in²\n",
		d.Name, len(d.Parts), len(d.Nets), d.PinDensity())
}
