package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// grrBin is the binary under test, built once by TestMain.
var grrBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "grr-test")
	if err != nil {
		panic(err)
	}
	grrBin = filepath.Join(dir, "grr")
	if out, err := exec.Command("go", "build", "-o", grrBin, ".").CombinedOutput(); err != nil {
		os.RemoveAll(dir)
		panic("building grr: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// a small but non-trivial design every CLI test shares.
const testDesign = `board cli-test 12 12 2 3
package dip4 0 0,0 1,0 0,1 1,1
part u1 dip4 1 1 TTL
part u2 dip4 8 8 TTL
part u3 dip4 1 8 TTL
net n1 TTL 0 u1.1/out u2.2/in
net n2 TTL 0 u1.4/out u3.1/in
net n3 TTL 0 u3.4/out u2.1/in
`

func writeDesignFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.brd")
	if err := os.WriteFile(path, []byte(testDesign), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runGrr executes the binary and returns (combined output, exit code).
func runGrr(t *testing.T, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(grrBin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	var ee *exec.ExitError
	if !asExitError(err, &ee) {
		t.Fatalf("running grr: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

func asExitError(err error, target **exec.ExitError) bool {
	ee, ok := err.(*exec.ExitError)
	if ok {
		*target = ee
	}
	return ok
}

func TestExitUsageWithoutDesign(t *testing.T) {
	out, code := runGrr(t)
	if code != exitUsage {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitUsage, out)
	}
	if !strings.Contains(out, "-design, -table1 or -resume") {
		t.Errorf("usage message missing: %s", out)
	}
}

// TestCheckpointResume drives the full operator workflow: route with
// periodic snapshots, resume from the snapshot (exit 0, same verified
// board), then corrupt the snapshot and demand a clean exit-1 rejection.
func TestCheckpointResume(t *testing.T) {
	brd := writeDesignFile(t)
	snap := filepath.Join(t.TempDir(), "run.snap")

	out, code := runGrr(t, "-design", brd, "-checkpoint", snap, "-checkpoint-every", "1")
	if code != exitOK {
		t.Fatalf("checkpointed run exit code = %d, want %d\n%s", code, exitOK, out)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if _, err := os.Stat(snap + ".tmp"); err == nil {
		t.Error("temporary snapshot file left behind")
	}

	out, code = runGrr(t, "-resume", snap)
	if code != exitOK {
		t.Fatalf("resume exit code = %d, want %d\n%s", code, exitOK, out)
	}
	if !strings.Contains(out, "resumed cli-test") {
		t.Errorf("resume banner missing: %s", out)
	}
	if !strings.Contains(out, "connectivity verified") {
		t.Errorf("resumed board failed verification: %s", out)
	}

	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(snap, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = runGrr(t, "-resume", snap)
	if code != exitInternal {
		t.Fatalf("corrupt snapshot exit code = %d, want %d\n%s", code, exitInternal, out)
	}
	if !strings.Contains(out, "checksum") {
		t.Errorf("corruption diagnosis missing: %s", out)
	}
}

// TestStatsFlagDumpsRegistry: -stats routes normally and then dumps the
// metrics registry, with the router's search and phase series present.
func TestStatsFlagDumpsRegistry(t *testing.T) {
	brd := writeDesignFile(t)
	out, code := runGrr(t, "-design", brd, "-stats")
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitOK, out)
	}
	for _, want := range []string{
		"grr: metrics registry:",
		"grr_router_routed_total",
		"grr_router_connections_total",
		`grr_router_phase_seconds{phase="zero_via"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
}

// TestStatsFlagOffByDefault: without -stats the dump never appears.
func TestStatsFlagOffByDefault(t *testing.T) {
	brd := writeDesignFile(t)
	out, code := runGrr(t, "-design", brd)
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitOK, out)
	}
	if strings.Contains(out, "metrics registry") {
		t.Errorf("registry dump printed without -stats:\n%s", out)
	}
}

func TestResumeExcludesDesign(t *testing.T) {
	out, code := runGrr(t, "-resume", "x.snap", "-design", "y.brd")
	if code != exitUsage {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitUsage, out)
	}
}

func TestExitOKWritesArtifacts(t *testing.T) {
	brd := writeDesignFile(t)
	rte := filepath.Join(t.TempDir(), "out.rte")
	out, code := runGrr(t, "-design", brd, "-routes", rte)
	if code != exitOK {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitOK, out)
	}
	if !strings.Contains(out, "connectivity verified") {
		t.Errorf("verification line missing: %s", out)
	}
	data, err := os.ReadFile(rte)
	if err != nil {
		t.Fatalf("routes artifact not written: %v", err)
	}
	if !strings.Contains(string(data), "route 0") {
		t.Errorf(".rte content looks wrong: %q", data)
	}
}

// TestExitIncompleteOnTimeBudget is the CLI half of the issue's
// acceptance scenario: an expired budget must exit 3 — incomplete but
// consistent — and still write the requested artifacts for inspection.
func TestExitIncompleteOnTimeBudget(t *testing.T) {
	brd := writeDesignFile(t)
	rte := filepath.Join(t.TempDir(), "out.rte")
	out, code := runGrr(t, "-design", brd, "-routes", rte, "-time-budget", "1ns")
	if code != exitIncomplete {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitIncomplete, out)
	}
	if !strings.Contains(out, "aborted: time budget exhausted") {
		t.Errorf("abort reason missing from output: %s", out)
	}
	if !strings.Contains(out, "connectivity verified") {
		t.Errorf("partial board failed verification: %s", out)
	}
	if _, err := os.Stat(rte); err != nil {
		t.Errorf("partial .rte artifact not written: %v", err)
	}
}

func TestExitUsageOnBadCost(t *testing.T) {
	brd := writeDesignFile(t)
	out, code := runGrr(t, "-design", brd, "-cost", "bogus")
	if code != exitUsage {
		t.Fatalf("exit code = %d, want %d\n%s", code, exitUsage, out)
	}
}

func TestParanoidFlagCleanRun(t *testing.T) {
	brd := writeDesignFile(t)
	out, code := runGrr(t, "-design", brd, "-paranoid")
	if code != exitOK {
		t.Fatalf("paranoid clean run exit code = %d, want %d\n%s", code, exitOK, out)
	}
}

func TestNodeBudgetFlagAccepted(t *testing.T) {
	brd := writeDesignFile(t)
	out, code := runGrr(t, "-design", brd, "-node-budget", "100000")
	if code != exitOK {
		t.Fatalf("node-budget run exit code = %d, want %d\n%s", code, exitOK, out)
	}
}

// TestResumeOptionConflict: explicitly passing an algorithmic flag that
// disagrees with the snapshot must fail loudly (exit 1) — silently
// resuming with mixed options would build a board neither run would
// have produced. Matching explicit flags and untouched defaults are
// both fine.
func TestResumeOptionConflict(t *testing.T) {
	brd := writeDesignFile(t)
	snap := filepath.Join(t.TempDir(), "run.snap")
	out, code := runGrr(t, "-design", brd, "-radius", "2", "-checkpoint", snap, "-checkpoint-every", "1")
	if code != exitOK {
		t.Fatalf("checkpointed run exit code = %d, want %d\n%s", code, exitOK, out)
	}

	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"conflicting radius", []string{"-radius", "1"}, exitInternal},
		{"conflicting sort", []string{"-sort=false"}, exitInternal},
		{"conflicting node budget", []string{"-node-budget", "7"}, exitInternal},
		{"matching radius", []string{"-radius", "2"}, exitOK},
		{"defaults", nil, exitOK},
	} {
		out, code := runGrr(t, append([]string{"-resume", snap}, tc.args...)...)
		if code != tc.want {
			t.Errorf("%s: exit code = %d, want %d\n%s", tc.name, code, tc.want, out)
		}
		if tc.want == exitInternal && !strings.Contains(out, "resuming with different algorithmic options") {
			t.Errorf("%s: conflict diagnosis missing:\n%s", tc.name, out)
		}
	}
}

// TestSecondSignalForcesExit: a run wedged inside a board mutation (the
// -fault-hang-at blocker holds it there forever) cannot honor the
// first signal's soft cancel — the second signal must terminate the
// process immediately with exit 130.
func TestSecondSignalForcesExit(t *testing.T) {
	brd := writeDesignFile(t)
	cmd := exec.Command(grrBin, "-design", brd, "-fault-hang-at", "1")
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()

	// First signal: acknowledged, but the wedged run can never reach the
	// boundary where the cancel is honored.
	time.Sleep(100 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waited:
		t.Fatalf("hung run exited on the first signal: %v\n%s", err, out.String())
	case <-time.After(300 * time.Millisecond):
	}

	// Second signal: immediate exit 130.
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waited:
		var ee *exec.ExitError
		if !asExitError(err, &ee) || ee.ExitCode() != exitForced {
			t.Fatalf("second signal: err = %v, want exit %d\n%s", err, exitForced, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("second signal did not terminate the run\n%s", out.String())
	}
	if !strings.Contains(out.String(), "forcing exit") {
		t.Errorf("forced-exit banner missing:\n%s", out.String())
	}
}
