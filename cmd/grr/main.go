// Command grr is the greedy printed circuit board router of the paper.
// It routes a board design (stringing it on the fly, or taking a
// pre-strung .con file), prints a Table 1-style result row, and can emit
// the routed result and SVG figures.
//
// Usage:
//
//	grr -design coproc.brd -routes coproc.rte -svg-dir figs/
//	grr -design coproc.brd -conns coproc.con
//	grr -design coproc.brd -time-budget 30s -node-budget 50000
//	grr -design coproc.brd -checkpoint run.snap -checkpoint-every 64
//	grr -resume run.snap   # continue a crashed or aborted run
//	grr -table1            # regenerate the paper's Table 1 end to end
//	grr -table1 -scale 2   # quick, reduced-size variant
//	grr -submit-batch http://127.0.0.1:8370 -deadline 30s a.brd b.brd
//
// Exit codes:
//
//	0  every connection routed and (with -check) verified; for -resume,
//	   the resumed run completed the board
//	1  internal error: bad input, I/O failure, failed verification, a
//	   corrupt or truncated -resume snapshot, or a -checkpoint snapshot
//	   that could not be written
//	2  usage error
//	3  incomplete but consistent: the route ran out of budget, was
//	   interrupted, or left connections unrouted, yet the board state
//	   is valid and any requested artifacts were still written (a
//	   -checkpoint run can be continued with -resume)
//
// SIGINT/SIGTERM cancel the route at its next checkpoint; the partial
// result is reported and artifacts are written, exactly as when a
// -time-budget expires. With -checkpoint the run is additionally
// resumable: because the router is deterministic, -resume finishes with
// the exact board an uninterrupted run would have produced. A second
// SIGINT/SIGTERM forces an immediate exit (code 130) — the escape hatch
// for a run wedged somewhere the soft cancel is never polled.
//
// -resume replays the remainder of the route with the snapshot's own
// algorithmic options; explicitly passing a conflicting -radius, -sort,
// -cost, -bidirectional, -engine or -node-budget is an error (exit 1),
// because mixed options would silently produce a board neither run would
// have built.
//
// -edits applies a design-delta script (block / remove-net / add-conn
// lines) after the base route; with -incremental only the connections
// the edits disturb are re-searched, yet the edited board is identical
// to routing the edited design from scratch:
//
//	grr -design coproc.brd -edits rev2.edits -incremental
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/experiment"
	"repro/internal/faultinject"
	"repro/internal/grid"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/photoplot"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/stringer"
	"repro/internal/timing"
	"repro/internal/tuning"
	"repro/internal/verify"
)

const (
	exitOK         = 0
	exitInternal   = 1
	exitUsage      = 2
	exitIncomplete = 3
	exitForced     = 130
)

func main() { os.Exit(run()) }

func run() int {
	var (
		design = flag.String("design", "", "input .brd design")
		connsF = flag.String("conns", "", "pre-strung .con connection list (default: string the design's nets)")
		routes = flag.String("routes", "", "write routed output (.rte) here")
		svgDir = flag.String("svg-dir", "", "write figure SVGs (placement, problem, layers, routes) here")
		table1 = flag.Bool("table1", false, "route every Table 1 board and print the table")
		scale  = flag.Int("scale", 1, "with -table1: shrink boards by this factor")
		jobs   = flag.Int("j", 1, "with -table1: boards routed concurrently (0 = one worker per CPU, capped at the board count)")
		jc     = flag.Int("jc", 1, "route each board's connections on N worker goroutines (0 = one per CPU); output is bit-identical to -jc 1")
		check  = flag.Bool("check", true, "verify connectivity of every routed connection")
		report = flag.Bool("report", false, "print the timing report and the 5 most critical nets")
		runDRC = flag.Bool("drc", false, "run the design-rule checker on the routed board")
		gerber = flag.String("gerber-dir", "", "write RS-274X photoplots and the drill file here")
		trees  = flag.Bool("trees", false, "string TTL nets as minimum spanning trees instead of chains")
		congst = flag.Bool("congestion", false, "print the channel-occupancy heatmap after routing")

		radius = flag.Int("radius", 1, "orthogonal movement allowance in via units (Section 8.1)")
		sort   = flag.Bool("sort", true, "sort connections before routing (Section 6)")
		cost   = flag.String("cost", "dist*hops", "Lee cost function: dist*hops, plus-one, distance")
		bidi   = flag.Bool("bidirectional", true, "spread Lee wavefronts from both ends")
		engine = flag.String("engine", "classic", "Lee search engine: classic, goal (goal-oriented lower-bound priorities)")

		editsF      = flag.String("edits", "", "after routing, apply this edit script (block/remove-net/add-conn lines) and route the edited design")
		incremental = flag.Bool("incremental", false, "with -edits: re-route only the connections the edits disturb instead of routing the edited design from scratch")

		timeBudget = flag.Duration("time-budget", 0, "stop routing after this much wall-clock time (0 = none); partial results exit 3")
		nodeBudget = flag.Int("node-budget", 0, "fail any connection whose search expands more than this many nodes (0 = none)")
		paranoid   = flag.Bool("paranoid", false, "audit board invariants between routing passes; a broken invariant aborts with exit 1")

		checkpoint = flag.String("checkpoint", "", "periodically save a resumable snapshot here (atomic rename; survives SIGKILL)")
		ckEvery    = flag.Int("checkpoint-every", 64, "with -checkpoint: snapshot every N routing attempts")
		resume     = flag.String("resume", "", "resume an interrupted run from this snapshot (written by -checkpoint)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile here")
		memprofile = flag.String("memprofile", "", "write a heap profile here on exit")
		dumpStats  = flag.Bool("stats", false, "dump the metrics registry (search effort, phase timings) to stderr after the run")

		hangAt = flag.Int("fault-hang-at", 0, "fault injection: wedge the run inside the Nth segment placement (testing only)")

		submitBatch = flag.String("submit-batch", "", "submit the positional .brd files as one batch to this grrd/coordinator base URL instead of routing locally")
		deadline    = flag.Duration("deadline", 0, "with -submit-batch: end-to-end deadline granted to every job in the batch (0 = none)")
	)
	flag.Parse()
	if *submitBatch != "" {
		return runSubmitBatch(*submitBatch, *deadline, flag.Args())
	}
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	// First signal: soft-cancel the route (it stops at the next
	// connection boundary and still writes artifacts). Second signal:
	// the run is evidently stuck somewhere that never polls the cancel
	// flag — get out now.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		got := <-sig
		fmt.Fprintf(os.Stderr, "grr: %v: stopping at the next connection boundary (again to force exit)\n", got)
		cancel()
		got = <-sig
		fmt.Fprintf(os.Stderr, "grr: %v again: forcing exit\n", got)
		os.Exit(exitForced)
	}()

	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return fail(err)
	}
	defer stopProfiles()

	opts := core.DefaultOptions()
	if *dumpStats {
		// The registry aggregates across every board this invocation
		// routes (one, or the whole -table1 sweep) and dumps on the way
		// out — the run() int shape exists so defers like this fire
		// before the process exits.
		reg := obs.NewRegistry()
		opts.Metrics = reg
		defer func() {
			fmt.Fprintln(os.Stderr, "grr: metrics registry:")
			reg.DumpTable(os.Stderr)
		}()
	}
	opts.Radius = *radius
	opts.Sort = *sort
	opts.Bidirectional = *bidi
	if *jc <= 0 {
		*jc = runtime.GOMAXPROCS(0)
	}
	opts.Workers = *jc
	opts.TimeBudget = *timeBudget
	opts.NodeBudget = *nodeBudget
	opts.Paranoid = *paranoid
	switch *cost {
	case "dist*hops":
		opts.Cost = core.CostDistTimesHops
	case "plus-one":
		opts.Cost = core.CostPlusOne
	case "distance":
		opts.Cost = core.CostDistance
	default:
		fmt.Fprintf(os.Stderr, "grr: unknown cost function %q\n", *cost)
		return exitUsage
	}
	switch *engine {
	case "classic":
		opts.Engine = core.EngineClassic
	case "goal":
		opts.Engine = core.EngineGoal
	default:
		fmt.Fprintf(os.Stderr, "grr: unknown engine %q\n", *engine)
		return exitUsage
	}
	if *incremental && *editsF == "" {
		fmt.Fprintln(os.Stderr, "grr: -incremental requires -edits")
		return exitUsage
	}

	cfg := singleConfig{
		design: *design, connsF: *connsF, routes: *routes, svgDir: *svgDir,
		gerber: *gerber, trees: *trees, check: *check, report: *report,
		runDRC: *runDRC, congst: *congst,
		checkpoint: *checkpoint, ckEvery: *ckEvery,
		hangAt: *hangAt,
		edits:  *editsF, incremental: *incremental,
	}
	if *editsF != "" && (*checkpoint != "" || *resume != "") {
		fmt.Fprintln(os.Stderr, "grr: -edits excludes -checkpoint and -resume")
		return exitUsage
	}
	if *resume != "" {
		if *table1 || *design != "" {
			fmt.Fprintln(os.Stderr, "grr: -resume excludes -design and -table1")
			return exitUsage
		}
		return runResume(ctx, cfg, *resume, opts, explicit)
	}
	if *table1 {
		return runTable1(ctx, *scale, opts, *jobs)
	}
	if *design == "" {
		fmt.Fprintln(os.Stderr, "grr: -design, -table1 or -resume is required")
		return exitUsage
	}
	return runSingle(ctx, cfg, opts)
}

// runTable1 sweeps the Table 1 boards. Boards that failed outright are
// reported to stderr and drop out of the table; boards the context or a
// budget cut short stay in the table with their partial counts.
func runTable1(ctx context.Context, scale int, opts core.Options, jobs int) int {
	rows, err := experiment.Table1ParallelContext(ctx, scale, opts, jobs)

	printable := rows[:0:0]
	incomplete := 0
	for _, r := range rows {
		if r.Board == "" {
			continue // failed board; its error is in err
		}
		printable = append(printable, r)
		if r.Routed < r.Conns {
			incomplete++
		}
	}
	fmt.Print(stats.FormatTable(printable))

	if err != nil {
		fmt.Fprintln(os.Stderr, "grr:", err)
		return exitInternal
	}
	if incomplete > 0 {
		fmt.Fprintf(os.Stderr, "grr: %d board(s) incomplete\n", incomplete)
		return exitIncomplete
	}
	return exitOK
}

type singleConfig struct {
	design, connsF, routes, svgDir, gerber string
	trees, check, report, runDRC, congst   bool
	checkpoint                             string
	ckEvery                                int
	hangAt                                 int
	edits                                  string
	incremental                            bool
}

// attachCheckpointSink wires a periodic snapshot writer into opts. The
// serialized options are a copy taken now, before core.New: they are the
// algorithmic inputs a -resume run needs to replay the remainder of the
// route deterministically.
func attachCheckpointSink(opts *core.Options, path string, every int, d *netlist.Design, conns []core.Connection) {
	// A previous run that crashed mid-checkpoint (between create and
	// rename) leaves path.tmp behind; the snapshot itself is intact, the
	// droppings are just noise — sweep them before writing fresh ones.
	os.Remove(path + ".tmp")
	opts.CheckpointEvery = every
	serial := *opts
	serial.CheckpointSink = nil
	opts.CheckpointSink = func(cp *core.Checkpoint) error {
		return boardio.SaveSnapshot(path, &boardio.Snapshot{
			Design: d, Conns: conns, Opts: serial, Check: cp,
		})
	}
}

// runSingle routes one design. Artifacts (.rte, SVGs, photoplots) are
// written even when the route is aborted or incomplete — a partial
// result the operator can inspect beats an empty directory.
func runSingle(ctx context.Context, cfg singleConfig, opts core.Options) int {
	d, err := readDesign(cfg.design)
	if err != nil {
		return fail(err)
	}

	b, err := board.New(d.GridConfig())
	if err != nil {
		return fail(err)
	}
	if err := d.PlacePins(b); err != nil {
		return fail(err)
	}

	var conns []core.Connection
	if cfg.connsF != "" {
		cf, err := os.Open(cfg.connsF)
		if err != nil {
			return fail(err)
		}
		conns, err = boardio.ReadConnections(cf)
		cf.Close()
		if err != nil {
			return fail(err)
		}
	} else {
		sr, err := stringer.String(d, stringer.Options{Trees: cfg.trees})
		if err != nil {
			return fail(err)
		}
		conns = sr.Conns
	}

	if cfg.edits != "" {
		return runWithEdits(ctx, cfg, d, b, conns, opts)
	}
	if cfg.checkpoint != "" {
		attachCheckpointSink(&opts, cfg.checkpoint, cfg.ckEvery, d, conns)
	}
	if cfg.hangAt > 0 {
		// A blocker nobody releases: the run wedges inside a board
		// mutation, beyond the reach of the soft cancel. Exists to test
		// the second-signal escape hatch.
		b.Interpose(faultinject.BlockAt(cfg.hangAt))
	}
	r, err := core.New(b, conns, opts)
	if err != nil {
		return fail(err)
	}
	return routeAndReport(ctx, cfg, d, b, conns, r)
}

// runWithEdits routes the base design, applies the -edits script and
// routes the edited design — incrementally (adopting every recorded
// route the edits did not disturb) with -incremental, from scratch
// otherwise. The two modes produce the identical edited board; the
// incremental one just gets there without re-searching. Reports and
// artifacts describe the edited board.
func runWithEdits(ctx context.Context, cfg singleConfig, d *netlist.Design, b *board.Board, conns []core.Connection, opts core.Options) int {
	ef, err := os.Open(cfg.edits)
	if err != nil {
		return fail(err)
	}
	edits, err := boardio.ReadEdits(ef)
	ef.Close()
	if err != nil {
		return fail(err)
	}

	opts.RecordRegions = opts.RecordRegions || cfg.incremental
	r, err := core.New(b, conns, opts)
	if err != nil {
		return fail(err)
	}
	start := time.Now()
	res := r.RouteContext(ctx)
	fmt.Println("base route:")
	fmt.Println(stats.Header())
	fmt.Println(stats.NewRow(d, b, conns, res, time.Since(start)).Format())
	if res.Aborted != core.AbortNone {
		fmt.Fprintf(os.Stderr, "grr: base route aborted (%s); not applying edits\n", res.Aborted)
		if res.Invariant != nil {
			fmt.Fprintln(os.Stderr, "grr:", res.Invariant)
		}
		return exitInternal
	}

	b2, err := board.New(d.GridConfig())
	if err != nil {
		return fail(err)
	}
	if err := d.PlacePins(b2); err != nil {
		return fail(err)
	}
	for _, e := range edits {
		if e.Op == core.EditBlock {
			if err := b2.PlaceKeepout(e.Rect); err != nil {
				return fail(fmt.Errorf("edit block %v: %w", e.Rect, err))
			}
		}
	}

	var r2 *core.Router
	if cfg.incremental {
		r2, err = r.Reroute(b2, edits, nil)
	} else {
		r2, err = core.New(b2, core.EditConns(conns, edits), opts)
	}
	if err != nil {
		return fail(err)
	}
	fmt.Println("\nedited route:")
	code := routeAndReport(ctx, cfg, d, b2, r2.Conns, r2)
	if cfg.incremental {
		adopted, rerouted := r2.IncStats()
		fmt.Printf("incremental: %d route(s) adopted, %d re-routed\n", adopted, rerouted)
	}
	return code
}

// runResume reloads a -checkpoint snapshot and routes the rest of the
// board. Algorithmic options come from the snapshot — replaying the
// remainder with different knobs would diverge from the uninterrupted
// run — so an explicitly passed conflicting flag is refused loudly
// (exit 1) rather than silently overridden in either direction.
// Operational options (budget, checkpointing) come from this command
// line.
func runResume(ctx context.Context, cfg singleConfig, path string, flagOpts core.Options, explicit map[string]bool) int {
	snap, err := boardio.LoadSnapshot(path)
	if err != nil {
		return fail(err)
	}
	if err := resumeConflicts(flagOpts, snap.Opts, explicit); err != nil {
		return fail(err)
	}
	snap.Opts.TimeBudget = flagOpts.TimeBudget
	snap.Opts.Paranoid = snap.Opts.Paranoid || flagOpts.Paranoid
	snap.Opts.Metrics = flagOpts.Metrics // runtime-only; never serialized
	snap.Opts.CheckpointEvery = 0
	// Worker count is operational, not algorithmic (-jc N is bit-identical
	// to -jc 1): the resumed run may use a different machine's parallelism.
	snap.Opts.Workers = flagOpts.Workers
	if cfg.checkpoint != "" {
		attachCheckpointSink(&snap.Opts, cfg.checkpoint, cfg.ckEvery, snap.Design, snap.Conns)
	}
	b, r, err := snap.Restore()
	if err != nil {
		return fail(err)
	}
	fmt.Printf("resumed %s: pass %d, connection %d/%d\n",
		snap.Design.Name, snap.Check.Pass+1, snap.Check.NextPos, len(snap.Conns))
	return routeAndReport(ctx, cfg, snap.Design, b, snap.Conns, r)
}

// routeAndReport runs a prepared router to completion and handles all
// reporting and artifact emission shared by fresh and resumed runs.
func routeAndReport(ctx context.Context, cfg singleConfig, d *netlist.Design, b *board.Board, conns []core.Connection, r *core.Router) int {
	start := time.Now()
	res := r.RouteContext(ctx)
	elapsed := time.Since(start)

	row := stats.NewRow(d, b, conns, res, elapsed)
	fmt.Println(stats.Header())
	fmt.Println(row.Format())
	if res.Aborted != core.AbortNone {
		fmt.Printf("aborted: %s\n", res.Aborted)
	}
	if len(res.FailedConns) > 0 {
		fmt.Printf("unrouted: %d connections\n", len(res.FailedConns))
	}

	code := exitOK
	if res.Aborted == core.AbortInvariant {
		fmt.Fprintln(os.Stderr, "grr: invariant broken:", res.Invariant)
		code = exitInternal
	} else if res.Aborted == core.AbortCheckpoint {
		fmt.Fprintln(os.Stderr, "grr: checkpoint write failed:", res.Invariant)
		code = exitInternal
	} else if !res.Complete() {
		code = exitIncomplete
	}

	if cfg.check {
		if err := verify.Routed(b, r); err != nil {
			fmt.Fprintln(os.Stderr, "grr: verification failed:", err)
			code = exitInternal
		} else {
			fmt.Println("connectivity verified")
		}
	}

	if cfg.report {
		model := tuning.DefaultSpeeds(b.NumLayers())
		reports := timing.Analyze(b, r, model)
		fmt.Println("\ncritical paths:")
		fmt.Print(timing.Format(timing.CriticalPaths(reports, 5)))
		if viol := timing.Violations(reports, 100); len(viol) > 0 {
			fmt.Printf("%d timed nets miss their targets by more than 100 ps\n", len(viol))
		}
	}

	if cfg.congst {
		fmt.Println("\nchannel occupancy (8x8 via-unit regions):")
		fmt.Print(stats.MeasureCongestion(b, 8).Heatmap())
	}

	if cfg.runDRC {
		violations := drc.Check(b, grid.DefaultProcess)
		if len(violations) == 0 {
			fmt.Println("drc clean")
		} else {
			for _, v := range violations {
				fmt.Println("drc:", v)
			}
		}
	}

	if cfg.gerber != "" {
		if err := writeGerber(cfg.gerber, b, r); err != nil {
			return fail(err)
		}
	}

	if cfg.routes != "" {
		if err := writeFile(cfg.routes, func(w io.Writer) error {
			return boardio.WriteRoutes(w, r)
		}); err != nil {
			return fail(err)
		}
	}

	if cfg.svgDir != "" {
		if err := writeSVGs(cfg.svgDir, d, b, r, conns); err != nil {
			return fail(err)
		}
	}
	return code
}

// resumeConflicts rejects explicitly passed algorithmic flags that
// disagree with the snapshot's recorded options. Flags left at their
// defaults are fine — the snapshot's values simply apply.
func resumeConflicts(flagOpts, snapOpts core.Options, explicit map[string]bool) error {
	checks := []struct {
		flagName   string
		flag, snap any
	}{
		{"radius", flagOpts.Radius, snapOpts.Radius},
		{"sort", flagOpts.Sort, snapOpts.Sort},
		{"cost", flagOpts.Cost, snapOpts.Cost},
		{"bidirectional", flagOpts.Bidirectional, snapOpts.Bidirectional},
		{"engine", flagOpts.Engine, snapOpts.Engine},
		{"node-budget", flagOpts.NodeBudget, snapOpts.NodeBudget},
	}
	for _, c := range checks {
		if explicit[c.flagName] && c.flag != c.snap {
			return fmt.Errorf(
				"-resume: snapshot was routed with %s=%v but -%s=%v was given; resuming with different algorithmic options would diverge from the interrupted run (drop the flag to use the snapshot's value)",
				c.flagName, c.snap, c.flagName, c.flag)
		}
	}
	return nil
}

func readDesign(path string) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return boardio.ReadDesign(f)
}

func writeGerber(dir string, b *board.Board, r *core.Router) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for li := range b.Layers {
		path := filepath.Join(dir, fmt.Sprintf("layer%d.gbr", li))
		if err := writeFile(path, func(w io.Writer) error {
			return photoplot.WriteLayer(w, b, r, li)
		}); err != nil {
			return err
		}
		fmt.Println("wrote", path)
	}
	drillPath := filepath.Join(dir, "board.drl")
	if err := writeFile(drillPath, func(w io.Writer) error {
		return photoplot.WriteDrill(w, b)
	}); err != nil {
		return err
	}
	fmt.Println("wrote", drillPath)
	return nil
}

func writeSVGs(dir string, d *netlist.Design, b *board.Board, r *core.Router, conns []core.Connection) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	emit := func(name string, draw func(w io.Writer) error) error {
		path := filepath.Join(dir, name)
		if err := writeFile(path, draw); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	if err := emit("placement.svg", func(w io.Writer) error { return render.Placement(w, d) }); err != nil {
		return err
	}
	if err := emit("problem.svg", func(w io.Writer) error { return render.Problem(w, b, conns) }); err != nil {
		return err
	}
	for li := range b.Layers {
		li := li
		if err := emit(fmt.Sprintf("layer%d.svg", li), func(w io.Writer) error { return render.SignalLayer(w, b, li) }); err != nil {
			return err
		}
	}
	return emit("routes.svg", func(w io.Writer) error { return render.Routes(w, b, r) })
}

// writeFile creates path and runs write against it, reporting creation,
// write and close errors alike; the handle never leaks, even when write
// fails. Close errors matter here: every artifact goes through buffered
// writers whose final flush can be the first to see a full disk.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// startProfiles begins CPU profiling (if cpu is non-empty) and returns
// an idempotent stop function that also snapshots the heap to mem (if
// non-empty) after a final GC.
func startProfiles(cpu, mem string) (func(), error) {
	var stopCPU func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if stopCPU != nil {
				stopCPU()
			}
			if mem == "" {
				return
			}
			err := writeFile(mem, func(w io.Writer) error {
				runtime.GC() // fold pending garbage into accurate live-heap numbers
				return pprof.WriteHeapProfile(w)
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "grr:", err)
			}
		})
	}, nil
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "grr:", err)
	return exitInternal
}
