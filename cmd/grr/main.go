// Command grr is the greedy printed circuit board router of the paper.
// It routes a board design (stringing it on the fly, or taking a
// pre-strung .con file), prints a Table 1-style result row, and can emit
// the routed result and SVG figures.
//
// Usage:
//
//	grr -design coproc.brd -routes coproc.rte -svg-dir figs/
//	grr -design coproc.brd -conns coproc.con
//	grr -table1            # regenerate the paper's Table 1 end to end
//	grr -table1 -scale 2   # quick, reduced-size variant
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/drc"
	"repro/internal/experiment"
	"repro/internal/grid"
	"repro/internal/photoplot"
	"repro/internal/render"
	"repro/internal/stats"
	"repro/internal/stringer"
	"repro/internal/timing"
	"repro/internal/tuning"
	"repro/internal/verify"
)

func main() {
	var (
		design = flag.String("design", "", "input .brd design")
		connsF = flag.String("conns", "", "pre-strung .con connection list (default: string the design's nets)")
		routes = flag.String("routes", "", "write routed output (.rte) here")
		svgDir = flag.String("svg-dir", "", "write figure SVGs (placement, problem, layers, routes) here")
		table1 = flag.Bool("table1", false, "route every Table 1 board and print the table")
		scale  = flag.Int("scale", 1, "with -table1: shrink boards by this factor")
		jobs   = flag.Int("j", 1, "with -table1: boards routed concurrently (0 = one per CPU)")
		check  = flag.Bool("check", true, "verify connectivity of every routed connection")
		report = flag.Bool("report", false, "print the timing report and the 5 most critical nets")
		runDRC = flag.Bool("drc", false, "run the design-rule checker on the routed board")
		gerber = flag.String("gerber-dir", "", "write RS-274X photoplots and the drill file here")
		trees  = flag.Bool("trees", false, "string TTL nets as minimum spanning trees instead of chains")
		congst = flag.Bool("congestion", false, "print the channel-occupancy heatmap after routing")

		radius = flag.Int("radius", 1, "orthogonal movement allowance in via units (Section 8.1)")
		sort   = flag.Bool("sort", true, "sort connections before routing (Section 6)")
		cost   = flag.String("cost", "dist*hops", "Lee cost function: dist*hops, plus-one, distance")
		bidi   = flag.Bool("bidirectional", true, "spread Lee wavefronts from both ends")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile here")
		memprofile = flag.String("memprofile", "", "write a heap profile here on exit")
	)
	flag.Parse()

	stopProfiles = startProfiles(*cpuprofile, *memprofile)
	defer stopProfiles()

	opts := core.DefaultOptions()
	opts.Radius = *radius
	opts.Sort = *sort
	opts.Bidirectional = *bidi
	switch *cost {
	case "dist*hops":
		opts.Cost = core.CostDistTimesHops
	case "plus-one":
		opts.Cost = core.CostPlusOne
	case "distance":
		opts.Cost = core.CostDistance
	default:
		fatal(fmt.Errorf("unknown cost function %q", *cost))
	}

	if *table1 {
		rows, err := experiment.Table1Parallel(*scale, opts, *jobs)
		if err != nil {
			fatal(err)
		}
		fmt.Print(stats.FormatTable(rows))
		return
	}

	if *design == "" {
		fmt.Fprintln(os.Stderr, "grr: -design or -table1 is required")
		os.Exit(2)
	}
	f, err := os.Open(*design)
	if err != nil {
		fatal(err)
	}
	d, err := boardio.ReadDesign(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	b, err := board.New(d.GridConfig())
	if err != nil {
		fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		fatal(err)
	}

	var conns []core.Connection
	if *connsF != "" {
		cf, err := os.Open(*connsF)
		if err != nil {
			fatal(err)
		}
		conns, err = boardio.ReadConnections(cf)
		cf.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		sr, err := stringer.String(d, stringer.Options{Trees: *trees})
		if err != nil {
			fatal(err)
		}
		conns = sr.Conns
	}

	r, err := core.New(b, conns, opts)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res := r.Route()
	elapsed := time.Since(start)

	row := stats.NewRow(d, b, conns, res, elapsed)
	fmt.Println(stats.Header())
	fmt.Println(row.Format())
	if !res.Complete() {
		fmt.Printf("unrouted: %d connections\n", len(res.FailedConns))
	}

	if *check {
		if err := verify.Routed(b, r); err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		fmt.Println("connectivity verified")
	}

	if *report {
		model := tuning.DefaultSpeeds(b.NumLayers())
		reports := timing.Analyze(b, r, model)
		fmt.Println("\ncritical paths:")
		fmt.Print(timing.Format(timing.CriticalPaths(reports, 5)))
		if viol := timing.Violations(reports, 100); len(viol) > 0 {
			fmt.Printf("%d timed nets miss their targets by more than 100 ps\n", len(viol))
		}
	}

	if *congst {
		fmt.Println("\nchannel occupancy (8x8 via-unit regions):")
		fmt.Print(stats.MeasureCongestion(b, 8).Heatmap())
	}

	if *runDRC {
		violations := drc.Check(b, grid.DefaultProcess)
		if len(violations) == 0 {
			fmt.Println("drc clean")
		} else {
			for _, v := range violations {
				fmt.Println("drc:", v)
			}
		}
	}

	if *gerber != "" {
		if err := os.MkdirAll(*gerber, 0o755); err != nil {
			fatal(err)
		}
		for li := range b.Layers {
			path := filepath.Join(*gerber, fmt.Sprintf("layer%d.gbr", li))
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := photoplot.WriteLayer(f, b, r, li); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Println("wrote", path)
		}
		drillPath := filepath.Join(*gerber, "board.drl")
		f, err := os.Create(drillPath)
		if err != nil {
			fatal(err)
		}
		if err := photoplot.WriteDrill(f, b); err != nil {
			fatal(err)
		}
		f.Close()
		fmt.Println("wrote", drillPath)
	}

	if *routes != "" {
		rf, err := os.Create(*routes)
		if err != nil {
			fatal(err)
		}
		if err := boardio.WriteRoutes(rf, r); err != nil {
			fatal(err)
		}
		rf.Close()
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fatal(err)
		}
		emit := func(name string, draw func(w *os.File) error) {
			path := filepath.Join(*svgDir, name)
			file, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if err := draw(file); err != nil {
				fatal(err)
			}
			file.Close()
			fmt.Println("wrote", path)
		}
		emit("placement.svg", func(w *os.File) error { return render.Placement(w, d) })
		emit("problem.svg", func(w *os.File) error { return render.Problem(w, b, conns) })
		for li := range b.Layers {
			li := li
			emit(fmt.Sprintf("layer%d.svg", li), func(w *os.File) error { return render.SignalLayer(w, b, li) })
		}
		emit("routes.svg", func(w *os.File) error { return render.Routes(w, b, r) })
	}
}

// stopProfiles flushes any active profiles. fatal exits through os.Exit,
// which skips deferred calls, so it flushes explicitly; sync.Once inside
// keeps the success path's deferred call harmless after that.
var stopProfiles = func() {}

// startProfiles begins CPU profiling (if cpu is non-empty) and returns
// an idempotent stop function that also snapshots the heap to mem (if
// non-empty) after a final GC.
func startProfiles(cpu, mem string) func() {
	var stopCPU func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if stopCPU != nil {
				stopCPU()
			}
			if mem == "" {
				return
			}
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "grr:", err)
				return
			}
			runtime.GC() // fold pending garbage into accurate live-heap numbers
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "grr:", err)
			}
			f.Close()
		})
	}
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "grr:", err)
	os.Exit(1)
}
