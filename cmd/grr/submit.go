package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/server"
)

// runSubmitBatch posts the positional .brd files to a grrd daemon or
// fleet coordinator as one POST /jobs/batch request. Every job in the
// batch inherits -deadline as its end-to-end budget (the server pins
// each job's absolute deadline at its own admission). The batch call
// itself is all-or-nothing only at the transport level: individual jobs
// are accepted or refused independently, and each refusal is reported
// with its HTTP code.
//
// Exit 0 when every job was accepted (or answered from the route
// cache), 1 when any job was refused or a file could not be read.
func runSubmitBatch(baseURL string, deadline time.Duration, files []string) int {
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "grr: -submit-batch needs at least one .brd file argument")
		return exitUsage
	}
	req := server.BatchRequest{Jobs: make([]server.JobSpec, 0, len(files))}
	if deadline > 0 {
		ms := deadline.Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.DeadlineMs = &ms
	}
	for _, path := range files {
		design, err := os.ReadFile(path)
		if err != nil {
			return fail(err)
		}
		req.Jobs = append(req.Jobs, server.JobSpec{Design: string(design)})
	}

	body, err := json.Marshal(req)
	if err != nil {
		return fail(err)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(strings.TrimRight(baseURL, "/")+"/jobs/batch",
		"application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		fmt.Fprintf(os.Stderr, "grr: batch refused: %d %s\n", resp.StatusCode, e.Error)
		return exitInternal
	}
	var br server.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return fail(fmt.Errorf("bad batch response: %w", err))
	}
	if len(br.Jobs) != len(files) {
		return fail(fmt.Errorf("batch response has %d results for %d jobs", len(br.Jobs), len(files)))
	}

	code := exitOK
	for i, r := range br.Jobs {
		switch {
		case r.Status != nil:
			fmt.Printf("%s\t%s\t%s\n", files[i], r.Status.ID, r.Status.State)
		default:
			fmt.Printf("%s\tREFUSED %d\t%s\n", files[i], r.Code, r.Error)
			code = exitInternal
		}
	}
	fmt.Fprintf(os.Stderr, "grr: %d/%d accepted\n", br.Accepted, len(files))
	return code
}
