// Command powerplane generates power-plane etching patterns after routing
// (Section 13, Figure 22): the design is routed, then each power net's
// plane — antipads around foreign holes, thermal reliefs on its own pins
// — is written as an SVG negative.
//
// Usage:
//
//	powerplane -design coproc.brd -out-dir planes/
//	powerplane -design coproc.brd -net VEE -o vee.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/board"
	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/render"
	"repro/internal/stringer"
)

func main() {
	var (
		design = flag.String("design", "", "input .brd design (required)")
		net    = flag.String("net", "", "generate only this power net")
		out    = flag.String("o", "", "with -net: output SVG file (default stdout)")
		outDir = flag.String("out-dir", "planes", "without -net: directory for one SVG per power net")
		route  = flag.Bool("route", true, "route the design first so signal vias receive antipads")
	)
	flag.Parse()
	if *design == "" {
		fmt.Fprintln(os.Stderr, "powerplane: -design is required")
		os.Exit(2)
	}

	f, err := os.Open(*design)
	if err != nil {
		fatal(err)
	}
	d, err := boardio.ReadDesign(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	b, err := board.New(d.GridConfig())
	if err != nil {
		fatal(err)
	}
	if err := d.PlacePins(b); err != nil {
		fatal(err)
	}
	if *route {
		sr, err := stringer.String(d, stringer.Options{})
		if err != nil {
			fatal(err)
		}
		r, err := core.New(b, sr.Conns, core.DefaultOptions())
		if err != nil {
			fatal(err)
		}
		res := r.Route()
		fmt.Fprintf(os.Stderr, "powerplane: routed %d/%d connections\n", res.Metrics.Routed, res.Metrics.Connections)
	}

	opts := power.Options{}
	if *net != "" {
		p, err := power.Generate(b, d, nil, *net, opts)
		if err != nil {
			fatal(err)
		}
		w := os.Stdout
		if *out != "" {
			file, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer file.Close()
			w = file
		}
		if err := render.Plane(w, b, p); err != nil {
			fatal(err)
		}
		a, t, c := p.Counts()
		fmt.Fprintf(os.Stderr, "powerplane: %s: %d antipads, %d thermals, %d clearances\n", p.Net, a, t, c)
		return
	}

	planes, err := power.GenerateAll(b, d, nil, opts)
	if err != nil {
		fatal(err)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	for _, p := range planes {
		path := filepath.Join(*outDir, strings.ToLower(p.Net)+".svg")
		file, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := render.Plane(file, b, p); err != nil {
			fatal(err)
		}
		file.Close()
		a, t, c := p.Counts()
		fmt.Printf("wrote %s (%d antipads, %d thermals, %d clearances)\n", path, a, t, c)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerplane:", err)
	os.Exit(1)
}
