package repro

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/boardio"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/stringer"
	"repro/internal/workload"
)

// routeEquiv demands that two runs of the same problem are
// bit-identical: equal Metrics structs, equal board fingerprints, clean
// audits, and an identical segment/via chain for every connection.
func routeEquiv(t *testing.T, name string, ref, got *experiment.Run) {
	t.Helper()
	if ref.Result.Metrics != got.Result.Metrics {
		t.Errorf("%s: metrics differ:\n ref %+v\n got %+v", name, ref.Result.Metrics, got.Result.Metrics)
	}
	if rf, gf := ref.Board.Fingerprint(), got.Board.Fingerprint(); rf != gf {
		t.Errorf("%s: board fingerprints differ: %016x vs %016x", name, rf, gf)
	}
	if err := got.Board.Audit(); err != nil {
		t.Errorf("%s: audit failed: %v", name, err)
	}
	fp1, fp2 := routeFingerprint(ref), routeFingerprint(got)
	if fp1 != fp2 {
		l1, l2 := strings.Split(fp1, "\n"), strings.Split(fp2, "\n")
		for i := 0; i < len(l1) && i < len(l2); i++ {
			if l1[i] != l2[i] {
				t.Fatalf("%s: route chains diverge at line %d:\n ref: %s\n got: %s", name, i, l1[i], l2[i])
			}
		}
		t.Fatalf("%s: route chains differ in length: %d vs %d lines", name, len(l1), len(l2))
	}
}

// TestConcurrentMatchesSequential is the concurrency engine's bit-
// identity contract (DESIGN §11): -jc N must produce exactly the output
// of -jc 1 — same Metrics struct, same board fingerprint, same route
// chain per connection — because the committer adopts a speculative
// result only when it is provably the route the sequential ladder would
// have found, and re-routes sequentially otherwise. The seed spread
// covers boards that exercise every ladder rung including rip-up.
//
// How much the workers *win* is scheduler-dependent — on a single CPU
// the committer usually reaches a position first and routes inline, so
// any given run may adopt nothing. Engagement is therefore asserted in
// aggregate (some run must have produced speculative results at all)
// and the adopt path specifically gets its own retried subtest below,
// rather than a flaky per-run adoption floor.
func TestConcurrentMatchesSequential(t *testing.T) {
	specs := []workload.Spec{
		workload.Table1Specs()[3].Scale(3), // coproc: large, congested
		workload.Table1Specs()[0].Scale(2), // kdj11 2L: infeasible residue
		workload.Table1Specs()[5].Scale(3), // icache
	}
	engaged := 0 // speculative results produced, adopted or not, across all runs
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			opts := core.DefaultOptions()
			ref, err := experiment.RouteSpec(spec, opts)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Result.Metrics.Routed == 0 {
				t.Fatal("degenerate test: nothing routed")
			}
			for _, jc := range []int{2, 4} {
				copts := opts
				copts.Workers = jc
				got, err := experiment.RouteSpec(spec, copts)
				if err != nil {
					t.Fatal(err)
				}
				routeEquiv(t, fmt.Sprintf("jc=%d", jc), ref, got)
				adopted, conflicts, misses := got.Router.SpecStats()
				t.Logf("jc=%d: adopted %d, conflicts %d, misses %d", jc, adopted, conflicts, misses)
				engaged += adopted + conflicts
			}
		})
	}
	if engaged == 0 {
		t.Error("no worker produced a speculative result in any run: the engine is routing everything inline")
	}
}

// TestConcurrentAdoptionEngages pins the adopt path itself: at least
// one jc=4 run must merge a speculative result by journal replay rather
// than routing inline. Adoption needs a worker to beat the committer to
// a position, which one CPU rarely allows under cooperative scheduling,
// so the test raises GOMAXPROCS (OS threads preempt even on one core)
// and retries a handful of runs — each of which must still be
// bit-identical to the sequential reference — before declaring the
// path dead.
func TestConcurrentAdoptionEngages(t *testing.T) {
	spec := workload.Table1Specs()[3].Scale(3)
	opts := core.DefaultOptions()
	ref, err := experiment.RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	copts := opts
	copts.Workers = 4
	const attempts = 8
	for i := 0; i < attempts; i++ {
		got, err := experiment.RouteSpec(spec, copts)
		if err != nil {
			t.Fatal(err)
		}
		routeEquiv(t, fmt.Sprintf("attempt %d", i), ref, got)
		if adopted, conflicts, misses := got.Router.SpecStats(); adopted > 0 {
			t.Logf("attempt %d: adopted %d (conflicts %d, misses %d)", i, adopted, conflicts, misses)
			return
		}
	}
	t.Errorf("no speculative result adopted in %d jc=4 runs at GOMAXPROCS=4: the adopt path is not engaging", attempts)
}

// TestConcurrentCheckpointResumeEquivalence cuts a concurrent run off
// mid-flight at a checkpoint, resumes it — once sequentially, once
// concurrently — and demands both finishes be bit-identical to an
// uninterrupted sequential run. This is the guarantee that lets grrd
// recover a -jc job after SIGKILL: checkpoints cut at merge-turn
// boundaries (OpenTxs()==0) carry exactly the sequential run's state.
func TestConcurrentCheckpointResumeEquivalence(t *testing.T) {
	spec := workload.Table1Specs()[3].Scale(3)
	opts := core.DefaultOptions()

	ref, err := experiment.RouteSpec(spec, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, resumeJC := range []int{1, 4} {
		resumeJC := resumeJC
		t.Run(fmt.Sprintf("resume-jc%d", resumeJC), func(t *testing.T) {
			// Run concurrently, capturing checkpoints, and stop partway:
			// the sink returns an error after enough attempts, aborting
			// the run with AbortCheckpoint — a stand-in for SIGKILL that
			// leaves a durable checkpoint behind.
			copts := opts
			copts.Workers = 4
			copts.CheckpointEvery = 40
			var last *core.Checkpoint
			cut := 0
			copts.CheckpointSink = func(ck *core.Checkpoint) error {
				cut++
				if cut >= 4 {
					return fmt.Errorf("simulated crash")
				}
				last = ck
				return nil
			}
			d, err := workload.Generate(spec)
			if err != nil {
				t.Fatal(err)
			}
			interrupted, err := experiment.RouteDesign(d, copts, stringer.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if interrupted.Result.Aborted != core.AbortCheckpoint {
				t.Fatalf("expected AbortCheckpoint, got %v", interrupted.Result.Aborted)
			}
			if last == nil {
				t.Fatal("no checkpoint captured before the cut")
			}

			// Serialize through the snapshot codec (exactly grrd's
			// journal path) and resume with the requested worker count.
			ropts := opts
			ropts.Workers = resumeJC
			snap := &boardio.Snapshot{
				Design: interrupted.Design,
				Conns:  interrupted.Strung.Conns,
				Opts:   ropts,
				Check:  last,
			}
			var buf strings.Builder
			if err := boardio.WriteSnapshot(&buf, snap); err != nil {
				t.Fatal(err)
			}
			snap2, err := boardio.ReadSnapshot(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := experiment.ResumeSnapshot(context.Background(), snap2)
			if err != nil {
				t.Fatal(err)
			}
			routeEquiv(t, "resumed", ref, resumed)
		})
	}
}
