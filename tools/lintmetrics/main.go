// Command lintmetrics enforces the repo's metric-name contract
// (DESIGN.md §10): every series registered in code follows the grr_*
// snake_case convention, is documented in DESIGN.md's catalog, and —
// in the other direction — every name the catalog documents still
// exists in code. Run as `make lint-metrics`; it exits non-zero with
// one line per violation.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// namePat matches a metric base name wherever it appears: in a
// registration string literal (labels follow a '{' and are not part of
// the base name) or in prose.
var namePat = regexp.MustCompile(`grr_[a-z0-9_]*[a-z0-9]`)

// wellFormed is the convention itself: grr_ prefix, lowercase
// snake_case, no leading/trailing/doubled underscores.
var wellFormed = regexp.MustCompile(`^grr_[a-z0-9]+(_[a-z0-9]+)*$`)

// labelled matches a base name together with its label block, so the
// block's syntax can be checked as a unit.
var labelled = regexp.MustCompile(`grr_[a-z0-9_]*[a-z0-9]\{[^}` + "`" + `]*\}?`)

// wellFormedLabels is the label-block convention (the same one
// obs.Registry enforces at runtime): snake_case keys, double-quoted
// values, comma-separated. The fleet's per-state node gauges are the
// first labelled series registered outside internal/server, so the
// lint covers them statically too.
var wellFormedLabels = regexp.MustCompile(`^\{[a-z][a-z0-9_]*="[^"{}]*"(, ?[a-z][a-z0-9_]*="[^"{}]*")*\}$`)

// requiredPrefixes are metric families a subsystem contract depends
// on: the tail-latency contract (DESIGN §14) is only observable if at
// least one slow-posture, one hedge and one deadline series exist in
// code and in the §10 catalog. A refactor that renames a family away
// entirely fails here even though name-by-name cross-checking would
// stay green.
var requiredPrefixes = []string{"grr_fleet_slow_", "grr_hedge_", "grr_deadline_"}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}

	inCode, badLabels, err := collectFromSource(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmetrics:", err)
		os.Exit(1)
	}
	inDocs, err := collectFromFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintmetrics:", err)
		os.Exit(1)
	}

	var bad []string
	bad = append(bad, badLabels...)
	for name := range inCode {
		if !wellFormed.MatchString(name) {
			bad = append(bad, fmt.Sprintf("%s: malformed (want grr_ prefix, lowercase snake_case)", name))
		}
		if !inDocs[name] {
			bad = append(bad, fmt.Sprintf("%s: registered in code but missing from the DESIGN.md §10 catalog", name))
		}
	}
	for name := range inDocs {
		if !inCode[name] {
			bad = append(bad, fmt.Sprintf("%s: documented in DESIGN.md but registered nowhere in code", name))
		}
	}
	for _, prefix := range requiredPrefixes {
		for where, set := range map[string]map[string]bool{"code": inCode, "the DESIGN.md §10 catalog": inDocs} {
			found := false
			for name := range set {
				if strings.HasPrefix(name, prefix) {
					found = true
					break
				}
			}
			if !found {
				bad = append(bad, fmt.Sprintf("%s*: required metric family has no series in %s", prefix, where))
			}
		}
	}
	if len(bad) > 0 {
		sort.Strings(bad)
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "lintmetrics:", b)
		}
		os.Exit(1)
	}
	fmt.Printf("lintmetrics: %d metric names consistent between code and DESIGN.md\n", len(inCode))
}

// collectFromSource gathers metric base names from every non-test .go
// file under cmd/ and internal/, and checks the label syntax of any
// complete label block it can see. Scanning text rather than the AST
// keeps concatenated registrations (labelled series built in loops)
// visible: only the base name before '{' matters for the catalog, and
// a block interrupted by concatenation or prose ellipsis is skipped
// rather than misjudged.
func collectFromSource(root string) (names map[string]bool, badLabels []string, err error) {
	names = make(map[string]bool)
	for _, dir := range []string{"cmd", "internal"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			for _, m := range namePat.FindAllString(string(data), -1) {
				names[m] = true
			}
			for _, m := range labelled.FindAllString(string(data), -1) {
				block := m[strings.IndexByte(m, '{'):]
				if !strings.HasSuffix(block, "}") || strings.Contains(block, "...") {
					continue // built by concatenation, or prose shorthand
				}
				if !wellFormedLabels.MatchString(block) {
					rel, _ := filepath.Rel(root, path)
					badLabels = append(badLabels,
						fmt.Sprintf(`%s: malformed label block in %s (want {key="value", ...}, snake_case keys)`, m, rel))
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return names, badLabels, nil
}

func collectFromFile(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	names := make(map[string]bool)
	for _, m := range namePat.FindAllString(string(data), -1) {
		names[m] = true
	}
	return names, nil
}
