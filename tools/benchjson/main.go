// Command benchjson runs the Table 1 sweep at a set of intra-board
// worker counts and writes the results as machine-readable JSON to
// BENCH_<gitsha>.json, so successive commits can be compared number by
// number instead of by eyeballing test logs.
//
// For every board and every -jc value it records wall-clock seconds,
// heap allocations, routed/failed counts, via count, rip-ups and the
// speculation counters (adoptions, conflicts, misses). Before writing
// anything it asserts the concurrency contract: every worker count must
// produce a bit-identical board fingerprint and Metrics struct to the
// sequential run — a divergence is a hard error, not a data point.
//
// The environment block records GOMAXPROCS and NumCPU: speedup figures
// are only meaningful on hardware that can actually run the workers in
// parallel, and a single-core container will legitimately report ~1×.
//
// Usage:
//
//	go run ./tools/benchjson -scale 4 -jc 1,4 -out .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

type runResult struct {
	Workers   int     `json:"workers"`
	Seconds   float64 `json:"seconds"`
	Allocs    uint64  `json:"allocs"`
	Bytes     uint64  `json:"bytes"`
	Routed    int     `json:"routed"`
	Failed    int     `json:"failed"`
	Vias      int     `json:"vias"`
	RipUps    int     `json:"rip_ups"`
	Adopted   int     `json:"spec_adopted"`
	Conflicts int     `json:"spec_conflicts"`
	Misses    int     `json:"spec_misses"`
}

type boardResult struct {
	Board       string      `json:"board"`
	Conns       int         `json:"conns"`
	Fingerprint string      `json:"fingerprint"`
	Runs        []runResult `json:"runs"`
	// Speedup is sequential seconds / fastest concurrent seconds (1.0
	// when only jc=1 ran).
	Speedup float64 `json:"speedup"`
}

type output struct {
	GitSHA     string        `json:"git_sha"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Scale      int           `json:"scale"`
	When       string        `json:"when"`
	Boards     []boardResult `json:"boards"`
}

func main() {
	var (
		scale  = flag.Int("scale", 1, "shrink Table 1 boards by this factor")
		jcList = flag.String("jc", "1,4", "comma-separated intra-board worker counts; must include 1")
		outDir = flag.String("out", ".", "directory for BENCH_<gitsha>.json")
		boards = flag.String("boards", "", "comma-separated board-name filter (default: all)")
	)
	flag.Parse()

	jcs, err := parseJCs(*jcList)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, b := range strings.Split(*boards, ",") {
		if b = strings.TrimSpace(b); b != "" {
			want[b] = true
		}
	}

	out := output{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      *scale,
		When:       time.Now().UTC().Format(time.RFC3339),
	}

	for _, spec := range workload.Table1Specs() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		br, err := benchBoard(spec.Scale(*scale), jcs)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		out.Boards = append(out.Boards, br)
		fmt.Printf("%-10s %5d conns:", br.Board, br.Conns)
		for _, r := range br.Runs {
			fmt.Printf("  jc=%d %.3fs", r.Workers, r.Seconds)
		}
		fmt.Printf("  speedup %.2fx\n", br.Speedup)
	}

	path := filepath.Join(*outDir, "BENCH_"+out.GitSHA+".json")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(out)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// benchBoard routes one board once per worker count, asserting that
// every run reproduces the sequential run bit-exactly.
func benchBoard(spec workload.Spec, jcs []int) (boardResult, error) {
	br := boardResult{Board: spec.Name}
	var refM core.Metrics
	var refFP uint64
	for i, jc := range jcs {
		opts := core.DefaultOptions()
		opts.Workers = jc

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run, err := experiment.RouteSpec(spec, opts)
		if err != nil {
			return br, err
		}
		runtime.ReadMemStats(&after)

		m := run.Result.Metrics
		fp := run.Board.Fingerprint()
		if i == 0 {
			refM, refFP = m, fp
			br.Conns = m.Connections
			br.Fingerprint = fmt.Sprintf("%016x", fp)
		} else {
			if fp != refFP {
				return br, fmt.Errorf("jc=%d fingerprint %016x differs from jc=%d's %016x", jc, fp, jcs[0], refFP)
			}
			if m != refM {
				return br, fmt.Errorf("jc=%d metrics differ from jc=%d:\n got  %+v\n want %+v", jc, jcs[0], m, refM)
			}
		}
		if err := run.Board.Audit(); err != nil {
			return br, fmt.Errorf("jc=%d audit: %w", jc, err)
		}
		adopted, conflicts, misses := run.Router.SpecStats()
		br.Runs = append(br.Runs, runResult{
			Workers:   jc,
			Seconds:   run.Elapsed.Seconds(),
			Allocs:    after.Mallocs - before.Mallocs,
			Bytes:     after.TotalAlloc - before.TotalAlloc,
			Routed:    m.Routed,
			Failed:    m.Failed,
			Vias:      m.ViasAdded,
			RipUps:    m.RipUps,
			Adopted:   adopted,
			Conflicts: conflicts,
			Misses:    misses,
		})
	}
	br.Speedup = 1
	for _, r := range br.Runs[1:] {
		if s := br.Runs[0].Seconds / r.Seconds; s > br.Speedup {
			br.Speedup = s
		}
	}
	return br, nil
}

func parseJCs(s string) ([]int, error) {
	var jcs []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -jc value %q", f)
		}
		jcs = append(jcs, n)
	}
	if len(jcs) == 0 || jcs[0] != 1 {
		return nil, fmt.Errorf("-jc must start with 1 (the sequential reference): %q", s)
	}
	return jcs, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
