// Command benchjson runs the Table 1 sweep at a set of intra-board
// worker counts and writes the results as machine-readable JSON to
// BENCH_<gitsha>.json, so successive commits can be compared number by
// number instead of by eyeballing test logs.
//
// For every board and every -jc value it records wall-clock seconds,
// heap allocations, routed/failed counts, via count, rip-ups and the
// speculation counters (adoptions, conflicts, misses). Before writing
// anything it asserts the concurrency contract: every worker count must
// produce a bit-identical board fingerprint and Metrics struct to the
// sequential run — a divergence is a hard error, not a data point.
//
// The environment block records GOMAXPROCS and NumCPU: speedup figures
// are only meaningful on hardware that can actually run the workers in
// parallel, and a single-core container will legitimately report ~1×.
//
// Usage:
//
//	go run ./tools/benchjson -scale 4 -jc 1,4 -out .
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

type runResult struct {
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	Allocs     uint64  `json:"allocs"`
	Bytes      uint64  `json:"bytes"`
	Routed     int     `json:"routed"`
	Failed     int     `json:"failed"`
	Vias       int     `json:"vias"`
	RipUps     int     `json:"rip_ups"`
	Expansions int     `json:"lee_expansions"`
	Adopted    int     `json:"spec_adopted"`
	Conflicts  int     `json:"spec_conflicts"`
	Misses     int     `json:"spec_misses"`
}

// engineRun is one search-engine comparison row: the same board routed
// sequentially under the named engine. The classic row duplicates the
// jc=1 sweep numbers so the engines block reads standalone.
type engineRun struct {
	Engine     string  `json:"engine"`
	Seconds    float64 `json:"seconds"`
	Expansions int     `json:"lee_expansions"`
	Routed     int     `json:"routed"`
	Failed     int     `json:"failed"`
}

type boardResult struct {
	Board       string      `json:"board"`
	Conns       int         `json:"conns"`
	Fingerprint string      `json:"fingerprint"`
	Runs        []runResult `json:"runs"`
	// Engines compares the classic and goal-oriented engines on this
	// board (both sequential). main asserts the comparison: the goal
	// engine must expand meaningfully fewer nodes in aggregate while
	// routing the same number of connections per board.
	Engines []engineRun `json:"engines"`
	// Speedup is sequential seconds / fastest concurrent seconds (1.0
	// when only jc=1 ran).
	Speedup float64 `json:"speedup"`
}

type output struct {
	GitSHA     string        `json:"git_sha"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Scale      int           `json:"scale"`
	When       string        `json:"when"`
	Boards     []boardResult `json:"boards"`
}

func main() {
	var (
		scale  = flag.Int("scale", 1, "shrink Table 1 boards by this factor")
		jcList = flag.String("jc", "1,4", "comma-separated intra-board worker counts; must include 1")
		outDir = flag.String("out", ".", "directory for BENCH_<gitsha>.json")
		boards = flag.String("boards", "", "comma-separated board-name filter (default: all)")
	)
	flag.Parse()

	jcs, err := parseJCs(*jcList)
	if err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	for _, b := range strings.Split(*boards, ",") {
		if b = strings.TrimSpace(b); b != "" {
			want[b] = true
		}
	}

	out := output{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Scale:      *scale,
		When:       time.Now().UTC().Format(time.RFC3339),
	}

	for _, spec := range workload.Table1Specs() {
		if len(want) > 0 && !want[spec.Name] {
			continue
		}
		br, err := benchBoard(spec.Scale(*scale), jcs)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", spec.Name, err))
		}
		out.Boards = append(out.Boards, br)
		fmt.Printf("%-10s %5d conns:", br.Board, br.Conns)
		for _, r := range br.Runs {
			fmt.Printf("  jc=%d %.3fs", r.Workers, r.Seconds)
		}
		fmt.Printf("  speedup %.2fx  expansions classic=%d goal=%d\n",
			br.Speedup, br.Engines[0].Expansions, br.Engines[1].Expansions)
	}

	if err := assertEngines(out.Boards); err != nil {
		fatal(err)
	}

	path := filepath.Join(*outDir, "BENCH_"+out.GitSHA+".json")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(out)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// benchBoard routes one board once per worker count, asserting that
// every run reproduces the sequential run bit-exactly.
func benchBoard(spec workload.Spec, jcs []int) (boardResult, error) {
	br := boardResult{Board: spec.Name}
	var refM core.Metrics
	var refFP uint64
	for i, jc := range jcs {
		opts := core.DefaultOptions()
		opts.Workers = jc

		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		run, err := experiment.RouteSpec(spec, opts)
		if err != nil {
			return br, err
		}
		runtime.ReadMemStats(&after)

		m := run.Result.Metrics
		fp := run.Board.Fingerprint()
		if i == 0 {
			refM, refFP = m, fp
			br.Conns = m.Connections
			br.Fingerprint = fmt.Sprintf("%016x", fp)
		} else {
			if fp != refFP {
				return br, fmt.Errorf("jc=%d fingerprint %016x differs from jc=%d's %016x", jc, fp, jcs[0], refFP)
			}
			if m != refM {
				return br, fmt.Errorf("jc=%d metrics differ from jc=%d:\n got  %+v\n want %+v", jc, jcs[0], m, refM)
			}
		}
		if err := run.Board.Audit(); err != nil {
			return br, fmt.Errorf("jc=%d audit: %w", jc, err)
		}
		adopted, conflicts, misses := run.Router.SpecStats()
		br.Runs = append(br.Runs, runResult{
			Workers:    jc,
			Seconds:    run.Elapsed.Seconds(),
			Allocs:     after.Mallocs - before.Mallocs,
			Bytes:      after.TotalAlloc - before.TotalAlloc,
			Routed:     m.Routed,
			Failed:     m.Failed,
			Vias:       m.ViasAdded,
			RipUps:     m.RipUps,
			Expansions: m.LeeExpansions,
			Adopted:    adopted,
			Conflicts:  conflicts,
			Misses:     misses,
		})
	}
	br.Speedup = 1
	for _, r := range br.Runs[1:] {
		if s := br.Runs[0].Seconds / r.Seconds; s > br.Speedup {
			br.Speedup = s
		}
	}

	// Engine comparison: one sequential goal-engine run against the
	// sequential classic numbers already measured.
	br.Engines = append(br.Engines, engineRun{
		Engine:     "classic",
		Seconds:    br.Runs[0].Seconds,
		Expansions: br.Runs[0].Expansions,
		Routed:     br.Runs[0].Routed,
		Failed:     br.Runs[0].Failed,
	})
	gopts := core.DefaultOptions()
	gopts.Engine = core.EngineGoal
	grun, err := experiment.RouteSpec(spec, gopts)
	if err != nil {
		return br, err
	}
	if err := grun.Board.Audit(); err != nil {
		return br, fmt.Errorf("goal engine audit: %w", err)
	}
	gm := grun.Result.Metrics
	br.Engines = append(br.Engines, engineRun{
		Engine:     "goal",
		Seconds:    grun.Elapsed.Seconds(),
		Expansions: gm.LeeExpansions,
		Routed:     gm.Routed,
		Failed:     gm.Failed,
	})
	return br, nil
}

// assertEngines enforces the goal-engine contract across the sweep
// (DESIGN §15): per board, routed-metric parity and no expansion
// regression beyond noise; in aggregate, at least 20% fewer expanded
// nodes. A violation is a hard error — the bench artifact must not be
// written from a build whose heuristic stopped paying for itself.
func assertEngines(boards []boardResult) error {
	// Rows with real Lee traffic must improve strictly; tiny rows (the
	// optimal zero/one-via strategies route almost everything) only get
	// a noise guard, since a handful of floods can tie-break either way.
	const bigRow = 10000
	var classicTotal, goalTotal int
	for _, br := range boards {
		var cl, gl *engineRun
		for i := range br.Engines {
			switch br.Engines[i].Engine {
			case "classic":
				cl = &br.Engines[i]
			case "goal":
				gl = &br.Engines[i]
			}
		}
		if cl == nil || gl == nil {
			return fmt.Errorf("%s: engine comparison rows missing", br.Board)
		}
		classicTotal += cl.Expansions
		goalTotal += gl.Expansions
		// Routed-metric parity: the heuristic may only change the ORDER
		// of exploration, not meaningfully what gets routed. On feasible
		// boards both engines route everything and parity is exact; on
		// over-congested boards (kdj11-2L fails ~18% of its connections
		// under either engine) different tie-breaks cascade into slightly
		// different rip-up histories, so each row gets a 2%-of-connections
		// allowance in either direction.
		skew := br.Conns / 50
		if skew < 1 {
			skew = 1
		}
		if gl.Routed < cl.Routed-skew || gl.Routed > cl.Routed+skew {
			return fmt.Errorf("%s: goal engine routed %d of %d, classic %d — beyond the 2%% parity allowance",
				br.Board, gl.Routed, br.Conns, cl.Routed)
		}
		if cl.Expansions >= bigRow && gl.Expansions >= cl.Expansions {
			return fmt.Errorf("%s: goal engine expanded %d nodes, classic %d — no improvement on a Lee-heavy row",
				br.Board, gl.Expansions, cl.Expansions)
		}
		if cl.Expansions < bigRow && gl.Expansions > cl.Expansions+cl.Expansions/6 {
			return fmt.Errorf("%s: goal engine expanded %d nodes, classic %d — beyond the small-row noise allowance",
				br.Board, gl.Expansions, cl.Expansions)
		}
	}
	// The aggregate 20% target only means something when the sweep had
	// real Lee traffic; a shrunken -scale run routes almost everything
	// with the optimal strategies and would compare noise against noise.
	if classicTotal >= bigRow && goalTotal*10 > classicTotal*8 {
		return fmt.Errorf("goal engine expanded %d nodes across the sweep, classic %d — less than the required 20%% reduction",
			goalTotal, classicTotal)
	}
	return nil
}

func parseJCs(s string) ([]int, error) {
	var jcs []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -jc value %q", f)
		}
		jcs = append(jcs, n)
	}
	if len(jcs) == 0 || jcs[0] != 1 {
		return nil, fmt.Errorf("-jc must start with 1 (the sequential reference): %q", s)
	}
	return jcs, nil
}

func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
