# Repo-wide checks. `make check` is what CI (and pre-commit discipline)
# runs: vet, build everything, then the full test suite under the race
# detector — the parallel Table 1 sweep only counts as exercised when it
# runs race-clean.

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .
