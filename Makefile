# Repo-wide checks. `make check` is what CI's default job (and
# pre-commit discipline) runs: vet, build everything, the full test
# suite, the metric-name lint, plus a staticcheck pass and a
# vulnerability scan when those tools are available (each needs the
# tool and, for govulncheck, network access, so both are skipped,
# loudly, where missing). The race detector moved to its own target —
# `make race-concurrency` is the focused sweep CI runs as a dedicated
# job (Tx/clone shadows, the speculative router, and the jc=4
# determinism tests), `make race` the full-suite version for local
# soaks — so the default job stays fast while every concurrency path
# still has to run race-clean before merge.

GO ?= go

.PHONY: check vet build test race race-concurrency soak-fleet soak-disk soak-slow bench microbench lint-metrics staticcheck vulncheck

check: vet build test lint-metrics staticcheck vulncheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The concurrency surface under the race detector: the packages that
# own the Tx journal, shadow clones and the speculative router, plus
# the root-level jc=4 bit-identity and checkpoint/resume tests. This is
# what CI's dedicated race job runs.
race-concurrency:
	$(GO) test -race ./internal/core/... ./internal/board/...
	$(GO) test -race -run 'TestConcurrent' .

# The fleet chaos soak under the race detector: four workers plus a
# coordinator in one process, scripted partitions, a heartbeat-muted
# zombie and a full node kill, with every job required to finish
# bit-identical to its oracle and committed done in exactly one journal
# fleet-wide. CI runs this as its own job; the kill/handoff acceptance
# test rides along because it exercises the same failover machinery
# through the real grrd binary.
soak-fleet:
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestFleetChaosSoak'
	$(GO) test -race -count=1 ./cmd/grrd/ -run 'TestFleet'

# The fail-slow soak under the race detector: four workers, one of
# them slow on CPU and disk (delayed, never failing), 160 deadline-
# carrying jobs in two phases. The hedged phase's p99 must land
# strictly below the no-hedge baseline's in the same run, with zero
# jobs lost or duplicated (done in exactly one journal fleet-wide) and
# every result bit-identical to its oracle. The deadline and hedge
# plumbing tests ride along because they gate the same contract.
soak-slow:
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestFleetSlowSoak|TestCandidateOrderDeterministic'
	$(GO) test -race -count=1 ./internal/server/ -run 'TestDeadline|TestMaxBody|TestJournalDeadline|TestBatchSubmit'

# The crash-consistency and disk-fault soak under the race detector:
# the simfs replay model's own tests, the ALICE-style op-boundary
# enumeration over snapshot saves, the job journal and EPOCH fencing
# (every crash point materialized and recovered with the real code,
# results required bit-identical), plus the injected-ENOSPC degraded
# posture — park, 507 shedding, fleet routing-around, self-heal. CI
# runs this as its own job.
soak-disk:
	$(GO) test -race -count=1 ./internal/simfs/
	$(GO) test -race -count=1 ./internal/boardio/ -run 'CrashEnum|AtomicWrite|SyncDir|RemoveStaleTmp'
	$(GO) test -race -count=1 ./internal/server/ -run 'CrashEnum|Disk'
	$(GO) test -race -count=1 ./internal/fleet/ -run 'TestFleetRoutesAroundDiskDegradedNode'

# The Table 1 sweep at jc=1 and jc=4, written to BENCH_<gitsha>.json —
# one comparable artifact per commit. BENCH_SCALE > 1 shrinks the boards
# for quick runs; the sequential/concurrent bit-identity assertion runs
# either way, as does the engine comparison: routed-metric parity per
# board and (at full scale) >= 20% fewer expanded nodes for the goal
# engine. `make microbench` is the old go-test microbenchmark pass.
BENCH_SCALE ?= 1
BENCH_JC ?= 1,4

bench:
	$(GO) run ./tools/benchjson -scale $(BENCH_SCALE) -jc $(BENCH_JC) -out .

microbench:
	$(GO) test -bench=. -benchmem .

# Every grr_* series registered in code must follow the naming
# convention and appear in the DESIGN.md §10 catalog (and vice versa).
lint-metrics:
	$(GO) run ./tools/lintmetrics

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
