# Repo-wide checks. `make check` is what CI (and pre-commit discipline)
# runs: vet, build everything, then the full test suite under the race
# detector — the parallel Table 1 sweep and the grrd job daemon (worker
# pool, retry timers, drain) only count as exercised when they run
# race-clean — plus a staticcheck pass and a vulnerability scan when
# those tools are available (each needs the tool and, for govulncheck,
# network access, so both are skipped, loudly, where missing).

GO ?= go

.PHONY: check vet build test race bench lint-metrics staticcheck vulncheck

check: vet build race lint-metrics staticcheck vulncheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# Every grr_* series registered in code must follow the naming
# convention and appear in the DESIGN.md §10 catalog (and vice versa).
lint-metrics:
	$(GO) run ./tools/lintmetrics

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
