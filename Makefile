# Repo-wide checks. `make check` is what CI (and pre-commit discipline)
# runs: vet, build everything, then the full test suite under the race
# detector — the parallel Table 1 sweep only counts as exercised when it
# runs race-clean — and a vulnerability scan when govulncheck is
# available (the scan needs the tool and network access, so it is
# skipped, loudly, where either is missing).

GO ?= go

.PHONY: check vet build test race bench vulncheck

check: vet build race vulncheck

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi
